package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// SuiteRow reports one (application, policy) cell across the full ALPBench
// suite — all five applications the paper lists in Section 6, including the
// two (face_rec, sphinx) that Table 2 omits.
type SuiteRow struct {
	App                    string
	Policy                 string
	AvgTempC, PeakTempC    float64
	CyclingMTTF, AgingMTTF float64
	CombinedMTTF           float64
	ExecTimeS              float64
}

// suitePolicies adds the reactive-throttle industrial baseline to the
// paper's three policies.
var suitePolicies = []string{PolicyLinuxOndemand, PolicyThrottle, PolicyGe, PolicyProposed}

// suiteCell identifies one independently runnable (app, policy) unit of the
// suite campaign. Cells share nothing — each builds a fresh workload and
// policy — so the pooled and sequential paths produce identical numbers.
type suiteCell struct {
	App, Policy string
}

// suiteCells enumerates the campaign's cells in table order.
func suiteCells(cfg Config) []suiteCell {
	apps := workload.AppNames()
	if cfg.Quick {
		apps = []string{"face_rec", "sphinx"}
	}
	cells := make([]suiteCell, 0, len(apps)*len(suitePolicies))
	for _, app := range apps {
		for _, pol := range suitePolicies {
			cells = append(cells, suiteCell{App: app, Policy: pol})
		}
	}
	return cells
}

// prepareSuiteCell splits one suite cell into its simulation and row mapper,
// the batchable form of runSuiteCell.
func prepareSuiteCell(cfg Config, c suiteCell) (sim.BatchRun, FinishCell, error) {
	br, err := prepareApp(cfg, c.App, workload.Set1, c.Policy)
	if err != nil {
		return sim.BatchRun{}, nil, fmt.Errorf("suite %s/%s: %w", c.App, c.Policy, err)
	}
	finish := func(r *sim.Result) (any, error) {
		return SuiteRow{
			App:          c.App,
			Policy:       c.Policy,
			AvgTempC:     r.AvgTempC,
			PeakTempC:    r.PeakTempC,
			CyclingMTTF:  r.CyclingMTTF,
			AgingMTTF:    r.AgingMTTF,
			CombinedMTTF: r.CombinedMTTF,
			ExecTimeS:    r.ExecTimeS,
		}, nil
	}
	return br, finish, nil
}

// runSuiteCell executes one cell of the suite campaign.
func runSuiteCell(cfg Config, c suiteCell) (SuiteRow, error) {
	br, finish, err := prepareSuiteCell(cfg, c)
	if err != nil {
		return SuiteRow{}, err
	}
	r, err := sim.Run(br.Cfg, br.Work, br.Policy)
	if err != nil {
		return SuiteRow{}, fmt.Errorf("suite %s/%s: %w", c.App, c.Policy, err)
	}
	row, err := finish(r)
	if err != nil {
		return SuiteRow{}, err
	}
	return row.(SuiteRow), nil
}

// Suite runs every ALPBench application (data set 1) under four policies —
// the paper's three plus a reactive thermal-throttling baseline — extending
// Table 2's three applications to the full five-app suite and adding the
// SOFR-combined lifetime. A failing cell no longer aborts the campaign: the
// surviving rows are returned together with the joined per-cell errors.
// Cancellation via ctx stops between cells and returns the partial rows.
func Suite(ctx context.Context, cfg Config) ([]SuiteRow, error) {
	var rows []SuiteRow
	var errs []error
	for _, c := range suiteCells(cfg) {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		row, err := runSuiteCell(cfg, c)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		rows = append(rows, row)
	}
	return rows, errors.Join(errs...)
}

// FormatSuite renders the full-suite table.
func FormatSuite(rows []SuiteRow) string {
	var sb strings.Builder
	sb.WriteString("Full ALPBench suite (data set 1) — including face_rec and sphinx\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "app\tpolicy\tavg T (C)\tpeak T (C)\tcycling MTTF (y)\taging MTTF (y)\tSOFR MTTF (y)\texec (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.0f\n",
			r.App, r.Policy, r.AvgTempC, r.PeakTempC, r.CyclingMTTF, r.AgingMTTF, r.CombinedMTTF, r.ExecTimeS)
	}
	w.Flush()
	return sb.String()
}
