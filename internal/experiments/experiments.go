// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated platform. Each experiment has a
// function returning typed rows plus a Format helper that prints the same
// layout the paper reports. The cmd/thermsim binary and the repository's
// benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes the experiment harness.
type Config struct {
	// Run is the base simulation configuration shared by every run.
	Run sim.RunConfig
	// Quick shrinks sweeps to a representative subset (used by unit tests
	// and smoke runs).
	Quick bool
	// Repeats averages learning-sensitive sweeps (Fig. 7) over this many
	// RL seeds; 0 means the default of 3 (1 in Quick mode).
	Repeats int
	// Seed, when nonzero, overrides the RL agent's base action-selection
	// seed (the package default of 42). The job service derives a distinct
	// per-job seed from the submitted base seed so resubmitting a spec is
	// bit-identical while distinct campaigns decorrelate.
	Seed int64
	// WarmStart, when non-nil, seeds the proposed controller of every run
	// with a previously learned Q-table (adopted via rl.Agent.AdoptTable)
	// instead of a zero table. Deterministic baselines are unaffected.
	WarmStart *rl.QTable
	// WarmStartAlpha is the learning rate adopted alongside WarmStart;
	// <= 0 selects the agent's AlphaExp.
	WarmStartAlpha float64
	// CampaignJSON, when non-empty, is the declarative tournament document
	// (the experiments.json spec) for the campaign planner. It is opaque
	// bytes here so the fixed planner signature func(Config, id) can carry
	// a tournament through every execution path — standalone CLI, pooled
	// submission, journal-recovery replanning and cluster cell dispatch —
	// without this package depending on the campaign engine.
	CampaignJSON []byte
	// WarmCheckpoint is the raw resolved warm-start checkpoint payload, for
	// policies whose learning state is not a proposed-controller Q-table
	// (the campaign engine routes it to the registered policy that owns its
	// kind). WarmStart above remains the decoded table for the proposed
	// controller.
	WarmCheckpoint []byte
	// LearningCurves, when non-nil, collects every sampled run's learning
	// curve with its full cell coordinates (policy, workload, seed,
	// repeat). Tournament cells always sample and deposit here; plain
	// experiment runs sample through Run.LearningObserver instead, which
	// only carries policy and workload names.
	LearningCurves *rl.CurveSet
}

// DefaultConfig returns the full-fidelity configuration.
func DefaultConfig() Config {
	return Config{Run: sim.DefaultRunConfig()}
}

// repeats resolves the effective repeat count.
func (c Config) repeats() int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	if c.Quick {
		return 1
	}
	return 3
}

// Policy names accepted by NewPolicy, in the order the paper's tables list
// them.
const (
	PolicyLinuxOndemand  = "linux-ondemand"
	PolicyLinuxPowersave = "linux-powersave"
	PolicyLinux24        = "linux-2.4GHz"
	PolicyLinux34        = "linux-3.4GHz"
	PolicyGe             = "ge-qiu"
	PolicyGeModified     = "ge-qiu-modified"
	PolicyThrottle       = "reactive-throttle"
	PolicyProposed       = "proposed"
)

// NewPolicy builds a fresh policy instance by name from the policy registry
// (which holds the table policies above plus the zoo's additional learners).
// Policies are stateful, so a new instance is required per run.
func NewPolicy(name string) (sim.Policy, error) {
	return policy.New(name, policy.Options{})
}

// newPolicy builds the policy for one run, threading the config's RL base
// seed and warm-start table into the proposed controller (every other
// policy is deterministic, so neither affects the baselines).
func newPolicy(cfg Config, name string) (sim.Policy, error) {
	p, err := NewPolicy(name)
	if err != nil {
		return p, err
	}
	if pp, ok := p.(*sim.ProposedPolicy); ok {
		configureProposed(cfg, pp)
	}
	return p, nil
}

// configureProposed threads the config's RL base seed and warm-start state
// into a hand-built proposed policy. A policy whose controller config the
// caller already pinned (parameter sweeps) is left untouched, as is the
// default when there is nothing to thread.
func configureProposed(cfg Config, pp *sim.ProposedPolicy) {
	if pp.Config != nil || (cfg.Seed == 0 && cfg.WarmStart == nil) {
		return
	}
	ctl := core.DefaultConfig()
	if cfg.Seed != 0 {
		ctl.Agent.Seed = cfg.Seed
	}
	ctl.WarmStart = cfg.WarmStart
	ctl.WarmStartAlpha = cfg.WarmStartAlpha
	pp.Config = &ctl
}

// PolicyFor is the exported form of newPolicy: a fresh policy instance for
// one run with the config's RL seed and warm-start state threaded through.
// The job service's tests and custom planners use it to run cells that
// honor a warm_start submission.
func PolicyFor(cfg Config, name string) (sim.Policy, error) {
	return newPolicy(cfg, name)
}

// agentSeed resolves the base RL seed for runners that construct the
// proposed controller's config by hand (the seed study).
func (c Config) agentSeed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return core.DefaultConfig().Agent.Seed
}

// prepareApp assembles the simulation for one (app, dataset, policy)
// combination without running it, so a batch executor can drive it as one
// lane of sim.RunBatch.
func prepareApp(cfg Config, appName string, ds workload.DataSet, policy string) (sim.BatchRun, error) {
	app, err := workload.ByName(appName, ds)
	if err != nil {
		return sim.BatchRun{}, err
	}
	pol, err := newPolicy(cfg, policy)
	if err != nil {
		return sim.BatchRun{}, err
	}
	// Row experiments consume only the scalar metrics, so the run streams
	// them instead of retaining the oracle traces.
	rc := cfg.Run
	rc.DiscardTrace = true
	return sim.BatchRun{Cfg: rc, Work: app, Policy: pol}, nil
}

// runApp executes one (app, dataset, policy) combination.
func runApp(cfg Config, appName string, ds workload.DataSet, policy string) (*sim.Result, error) {
	br, err := prepareApp(cfg, appName, ds, policy)
	if err != nil {
		return nil, err
	}
	return sim.Run(br.Cfg, br.Work, br.Policy)
}

// scenarioApps parses "mpegdec-tachyon-mpegenc" into its applications.
func scenarioApps(scenario string, ds workload.DataSet) (*workload.Sequence, error) {
	parts := strings.Split(scenario, "-")
	apps := make([]*workload.Application, 0, len(parts))
	for _, p := range parts {
		app, err := workload.ByName(p, ds)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", scenario, err)
		}
		apps = append(apps, app)
	}
	return workload.NewSequence(apps...), nil
}

// Names of all experiments, in paper order, followed by the repository's
// ablation study.
func ExperimentNames() []string {
	return []string{"fig1", "table2", "fig3", "fig45", "fig6", "fig7", "fig8", "table3", "fig9", "ablation", "seeds", "manycore", "noise", "suite", "concurrent", "library"}
}

// Run executes an experiment by id and returns its formatted report.
// Sequential callers that never cancel use this wrapper; long-running
// services pass a cancellable context to RunCtx instead.
func Run(cfg Config, id string) (string, error) {
	return RunCtx(context.Background(), cfg, id)
}

// RunCtx executes an experiment by id under ctx and returns its formatted
// report. Campaign-shaped experiments (suite, table2, seeds, concurrent)
// observe cancellation between cells; the remaining single-shot experiments
// run to completion.
func RunCtx(ctx context.Context, cfg Config, id string) (string, error) {
	switch id {
	case "fig1":
		r, err := Fig1(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig1(r), nil
	case "table2":
		r, err := Table2(ctx, cfg)
		if err != nil {
			return "", err
		}
		return FormatTable2(r), nil
	case "fig3":
		r, err := Fig3(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig3(r), nil
	case "fig45":
		r, err := Fig45(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig45(r), nil
	case "fig6":
		r, err := Fig6(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig6(r), nil
	case "fig7":
		r, err := Fig7(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig7(r), nil
	case "fig8":
		r, err := Fig8(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig8(r), nil
	case "table3":
		r, err := PerfEnergyGrid(cfg)
		if err != nil {
			return "", err
		}
		return FormatTable3(r), nil
	case "fig9":
		r, err := PerfEnergyGrid(cfg)
		if err != nil {
			return "", err
		}
		return FormatFig9(r), nil
	case "ablation":
		r, err := Ablation(cfg)
		if err != nil {
			return "", err
		}
		return FormatAblation(r), nil
	case "seeds":
		r, err := SeedStudy(ctx, cfg)
		if err != nil {
			return "", err
		}
		return FormatSeedStudy(r), nil
	case "manycore":
		r, err := Manycore(cfg)
		if err != nil {
			return "", err
		}
		return FormatManycore(r), nil
	case "noise":
		r, err := NoiseStudy(cfg)
		if err != nil {
			return "", err
		}
		return FormatNoiseStudy(r), nil
	case "suite":
		r, err := Suite(ctx, cfg)
		if err != nil {
			return "", err
		}
		return FormatSuite(r), nil
	case "concurrent":
		r, err := Concurrent(ctx, cfg)
		if err != nil {
			return "", err
		}
		return FormatConcurrent(r), nil
	case "library":
		r, err := LibraryStudy(cfg)
		if err != nil {
			return "", err
		}
		return FormatLibraryStudy(r), nil
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, ExperimentNames())
	}
}

// RunRows executes an experiment by id and returns its typed row data (for
// machine-readable output); Table 3 and Fig. 9 share the PerfEnergyGrid rows.
func RunRows(cfg Config, id string) (any, error) {
	return RunRowsCtx(context.Background(), cfg, id)
}

// RunRowsCtx is RunRows under a cancellable context.
func RunRowsCtx(ctx context.Context, cfg Config, id string) (any, error) {
	switch id {
	case "fig1":
		return Fig1(cfg)
	case "table2":
		return Table2(ctx, cfg)
	case "fig3":
		return Fig3(cfg)
	case "fig45":
		return Fig45(cfg)
	case "fig6":
		return Fig6(cfg)
	case "fig7":
		return Fig7(cfg)
	case "fig8":
		return Fig8(cfg)
	case "table3", "fig9":
		return PerfEnergyGrid(cfg)
	case "ablation":
		return Ablation(cfg)
	case "seeds":
		return SeedStudy(ctx, cfg)
	case "manycore":
		return Manycore(cfg)
	case "noise":
		return NoiseStudy(cfg)
	case "suite":
		return Suite(ctx, cfg)
	case "concurrent":
		return Concurrent(ctx, cfg)
	case "library":
		return LibraryStudy(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, ExperimentNames())
	}
}

// tableWriter builds an aligned text table.
func tableWriter(sb *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(sb, 0, 4, 2, ' ', 0)
}
