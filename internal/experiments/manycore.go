package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ManycoreRow reports one (grid, policy) cell of the scalability study.
type ManycoreRow struct {
	// Cores is the grid size (rows*cols).
	Cores  int
	Policy string
	// Threads is the workload's thread count.
	Threads                int
	AvgTempC, PeakTempC    float64
	CyclingMTTF, AgingMTTF float64
	ExecTimeS              float64
}

// manycoreWorkload builds a tachyon-like application with enough threads to
// oversubscribe the grid (1.5 threads per core, like the paper's 6 threads
// on 4 cores).
func manycoreWorkload(cores int) *workload.Application {
	sp := workload.TachyonSpec(workload.Set2)
	sp.NumThreads = cores * 3 / 2
	// Keep total work roughly proportional to compute capacity so execution
	// times stay comparable across grid sizes.
	sp.Iterations = sp.Iterations / 2
	return sp.Generate()
}

// manycoreMappings builds affinity templates generalized to n cores:
// os-default, an even round-robin spread, and a half-chip packing.
func manycoreMappings(cores, threads int) []core.Mapping {
	spread := make([]int, threads)
	half := make([]int, threads)
	for i := range spread {
		spread[i] = i % cores
		if cores < 2 {
			// A single-core grid has no half chip to pack into; pinning
			// everything to core 0 keeps the template well-defined instead
			// of dividing by zero.
			half[i] = 0
		} else {
			half[i] = i % (cores / 2)
		}
	}
	return []core.Mapping{
		{Name: "os-default"},
		{Name: "spread", Slots: spread},
		{Name: "half-chip", Slots: half},
	}
}

// Manycore evaluates the controller's scalability beyond the paper's
// quad-core: the same policy comparison on 2x2, 2x4 and 4x4 core grids,
// exercising the generalized floorplan, scheduler and action spaces. The
// paper's related-work discussion calls out scalability as the weakness of
// HotSpot-based approaches; the learning controller's per-epoch cost is
// independent of core count (the Q-table depends only on the state/action
// discretization).
func Manycore(cfg Config) ([]ManycoreRow, error) {
	grids := [][2]int{{2, 2}, {2, 4}, {4, 4}}
	if cfg.Quick {
		grids = grids[:2]
	}
	var rows []ManycoreRow
	for _, g := range grids {
		cores := g[0] * g[1]
		for _, polName := range []string{PolicyLinuxOndemand, PolicyProposed} {
			run := cfg.Run
			run.DiscardTrace = true // rows need only scalars
			run.Platform.GridRows, run.Platform.GridCols = g[0], g[1]
			run.Platform.Sched.NumCores = cores
			app := manycoreWorkload(cores)

			var pol sim.Policy
			if polName == PolicyProposed {
				ctl := core.DefaultConfig()
				ctl.Actions = core.BuildActions(
					manycoreMappings(cores, len(app.Threads())),
					[]core.GovernorChoice{
						{Kind: governor.Ondemand},
						{Kind: governor.Powersave},
						{Kind: governor.Userspace, Level: 2},
					})
				ctl.Agent = rl.DefaultAgentConfig(ctl.States.NumStates(), len(ctl.Actions))
				pol = &sim.ProposedPolicy{Config: &ctl}
			} else {
				p, err := NewPolicy(polName)
				if err != nil {
					return nil, err
				}
				pol = p
			}
			r, err := sim.Run(run, app, pol)
			if err != nil {
				return nil, fmt.Errorf("manycore %dx%d/%s: %w", g[0], g[1], polName, err)
			}
			rows = append(rows, ManycoreRow{
				Cores:       cores,
				Policy:      polName,
				Threads:     len(app.Threads()),
				AvgTempC:    r.AvgTempC,
				PeakTempC:   r.PeakTempC,
				CyclingMTTF: r.CyclingMTTF,
				AgingMTTF:   r.AgingMTTF,
				ExecTimeS:   r.ExecTimeS,
			})
		}
	}
	return rows, nil
}

// FormatManycore renders the scalability table.
func FormatManycore(rows []ManycoreRow) string {
	var sb strings.Builder
	sb.WriteString("Manycore scalability (beyond the paper's quad-core)\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "cores\tthreads\tpolicy\tavg T (C)\tpeak T (C)\tcycling MTTF (y)\taging MTTF (y)\texec (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%s\t%.1f\t%.1f\t%.2f\t%.2f\t%.0f\n",
			r.Cores, r.Threads, r.Policy, r.AvgTempC, r.PeakTempC, r.CyclingMTTF, r.AgingMTTF, r.ExecTimeS)
	}
	w.Flush()
	sb.WriteString("\nThe controller's aging/temperature gains carry over to larger grids;\nits per-epoch cost is independent of the core count.\n")
	return sb.String()
}
