package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationRow reports one controller variant on one workload.
type AblationRow struct {
	// Workload names the scenario ("tachyon" or the inter-app sequence).
	Workload string
	// Variant names the ablated mechanism.
	Variant string
	// The headline metrics.
	AvgTempC               float64
	CyclingMTTF, AgingMTTF float64
	ExecTimeS              float64
	// Relearns and Restores count variation-detector actions.
	Relearns, Restores int
}

// ablationVariant builds a controller configuration with one mechanism
// removed.
func ablationVariant(name string) (core.Config, error) {
	cfg := core.DefaultConfig()
	switch name {
	case "full":
		// The complete controller.
	case "coupled-sampling":
		// Ablates the paper's contribution 2: the temperature sampling
		// interval equals the decision epoch, so the state is derived from
		// (nearly) instantaneous temperature rather than a windowed
		// stress/aging computation.
		cfg.SamplingIntervalS = 15
		cfg.EpochSamples = 2 // minimum window: no cycling visibility
	case "no-hysteresis":
		// Ablates sticky action selection: greedy flapping at state-bin
		// boundaries is allowed again.
		cfg.Agent.Hysteresis = 0
	case "sarsa":
		// Algorithm swap: on-policy SARSA instead of the paper's
		// off-policy Q-learning.
		cfg.UseSARSA = true
	case "adaptive-sampling":
		// Addition rather than removal: the paper's Section 6.4 future-work
		// suggestion of learning the sampling interval online.
		cfg.AdaptiveSampling = true
	case "no-detection":
		// Ablates the Section 5.4 workload-variation detector entirely.
		cfg.StressLow = math.Inf(1)
		cfg.StressHigh = math.Inf(1)
		cfg.AgingLow = math.Inf(1)
		cfg.AgingHigh = math.Inf(1)
	default:
		return cfg, fmt.Errorf("experiments: unknown ablation variant %q", name)
	}
	return cfg, nil
}

// AblationVariants lists the controller variants evaluated by Ablation.
func AblationVariants() []string {
	return []string{"full", "coupled-sampling", "no-hysteresis", "no-detection", "sarsa", "adaptive-sampling"}
}

// Ablation evaluates the contribution of each controller mechanism by
// removing them one at a time, on an intra-application workload (tachyon)
// and an inter-application sequence (mpegdec-tachyon-mpegenc):
//
//   - coupled-sampling removes the sampling-interval/decision-epoch
//     separation (the paper's contribution 2);
//   - no-hysteresis removes sticky action selection (see DESIGN.md);
//   - no-detection removes the inter/intra workload-variation response.
func Ablation(cfg Config) ([]AblationRow, error) {
	type scenario struct {
		name  string
		build func() (workload.Workload, error)
	}
	scenarios := []scenario{
		{"tachyon", func() (workload.Workload, error) { return workload.Tachyon(workload.Set1), nil }},
		{"mpegdec-tachyon-mpegenc", func() (workload.Workload, error) {
			return scenarioApps("mpegdec-tachyon-mpegenc", workload.Set1)
		}},
	}
	variants := AblationVariants()
	if cfg.Quick {
		scenarios = scenarios[:1]
		variants = []string{"full", "coupled-sampling"}
	}
	var rows []AblationRow
	for _, sc := range scenarios {
		for _, v := range variants {
			ctl, err := ablationVariant(v)
			if err != nil {
				return nil, err
			}
			work, err := sc.build()
			if err != nil {
				return nil, err
			}
			pol := &sim.ProposedPolicy{Config: &ctl}
			// Rows need only scalars; stream them without the trace.
			rc := cfg.Run
			rc.DiscardTrace = true
			r, err := sim.Run(rc, work, pol)
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", sc.name, v, err)
			}
			agent := pol.Controller().Agent()
			rows = append(rows, AblationRow{
				Workload:    sc.name,
				Variant:     v,
				AvgTempC:    r.AvgTempC,
				CyclingMTTF: r.CyclingMTTF,
				AgingMTTF:   r.AgingMTTF,
				ExecTimeS:   r.ExecTimeS,
				Relearns:    agent.Relearns(),
				Restores:    agent.Restores(),
			})
		}
	}
	return rows, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — controller mechanisms removed one at a time\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "workload\tvariant\tavg T (C)\tcycling MTTF (y)\taging MTTF (y)\texec (s)\trelearns\trestores")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.2f\t%.2f\t%.0f\t%d\t%d\n",
			r.Workload, r.Variant, r.AvgTempC, r.CyclingMTTF, r.AgingMTTF, r.ExecTimeS, r.Relearns, r.Restores)
	}
	w.Flush()
	sb.WriteString("\ncoupled-sampling ablates the paper's sampling/epoch separation;\nno-hysteresis allows greedy action flapping; no-detection disables Section 5.4;\nsarsa swaps Eq. 7 for the on-policy update; adaptive-sampling adds Section 6.4's\nonline interval tuning.\n")
	return sb.String()
}
