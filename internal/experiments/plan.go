package experiments

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Cell is one independently runnable unit of an experiment. Cells of one
// experiment share no mutable state, so a scheduler may execute them in any
// order or concurrently; assembling their outputs in cell order reproduces
// the sequential runner's rows bit for bit.
type Cell struct {
	// Key labels the cell for progress reporting and error messages.
	Key string
	// Run executes the cell. The returned row's concrete type depends on
	// the experiment (SuiteRow, Table2Cell, ...).
	Run func(ctx context.Context) (any, error)
	// Prepare, when non-nil, splits the cell into its simulation and a
	// finish step mapping the Result to the cell's row, letting a batch
	// executor drive many cells' simulations in lockstep (sim.RunBatch).
	// Run remains the complete scalar path and routes through the same
	// prepare/finish pair, so batched and scalar rows are bit-identical by
	// construction. Cells whose work is not a single simulation (seed
	// studies, single-shot figure experiments) leave Prepare nil.
	Prepare func(ctx context.Context) (sim.BatchRun, FinishCell, error)
}

// FinishCell maps a completed simulation to the cell's row.
type FinishCell func(*sim.Result) (any, error)

// Assemble merges per-cell outputs, given in cell order, into the
// experiment's row type. Nil entries (skipped or failed cells) are dropped,
// mirroring the sequential wrap-and-continue behaviour of Suite.
type Assemble func(rows []any) any

// assembleAs builds an Assemble that collects non-nil cell outputs of type T.
func assembleAs[T any](rows []any) any {
	out := make([]T, 0, len(rows))
	for _, r := range rows {
		if r != nil {
			out = append(out, r.(T))
		}
	}
	return out
}

// traceCfg threads a span carried on ctx (the service's per-cell span) into
// the simulation config, so runs executed by this cell nest under it.
func traceCfg(ctx context.Context, cfg Config) Config {
	if tr, span := telemetry.SpanFromContext(ctx); tr != nil {
		cfg.Run.Tracer = tr
		cfg.Run.TraceParent = span
	}
	return cfg
}

// Cells decomposes experiment id under cfg into independently runnable
// cells plus the assembler that merges their outputs. Campaign-shaped
// experiments fan out per cell — suite and table2 per (app, policy) run,
// concurrent per (mix, policy), seeds per application — while the remaining
// single-shot experiments are one cell executing RunRowsCtx.
func Cells(cfg Config, id string) ([]Cell, Assemble, error) {
	switch id {
	case "suite":
		plan := suiteCells(cfg)
		cells := make([]Cell, len(plan))
		for i, c := range plan {
			c := c
			cells[i] = Cell{
				Key: fmt.Sprintf("suite/%s/%s", c.App, c.Policy),
				Run: func(ctx context.Context) (any, error) { return runSuiteCell(traceCfg(ctx, cfg), c) },
				Prepare: func(ctx context.Context) (sim.BatchRun, FinishCell, error) {
					return prepareSuiteCell(traceCfg(ctx, cfg), c)
				},
			}
		}
		return cells, assembleAs[SuiteRow], nil
	case "table2":
		plan := table2Cells(cfg)
		cells := make([]Cell, len(plan))
		for i, c := range plan {
			c := c
			cells[i] = Cell{
				Key: fmt.Sprintf("table2/%s/%v/%s", c.App, c.DataSet, c.Policy),
				Run: func(ctx context.Context) (any, error) { return runTable2Cell(traceCfg(ctx, cfg), c) },
				Prepare: func(ctx context.Context) (sim.BatchRun, FinishCell, error) {
					return prepareTable2Cell(traceCfg(ctx, cfg), c)
				},
			}
		}
		return cells, assembleAs[Table2Cell], nil
	case "seeds":
		apps, seeds := seedStudyApps(cfg)
		cells := make([]Cell, len(apps))
		for i, app := range apps {
			app := app
			cells[i] = Cell{
				Key: "seeds/" + app,
				Run: func(ctx context.Context) (any, error) { return runSeedStudyCell(ctx, traceCfg(ctx, cfg), app, seeds) },
			}
		}
		return cells, assembleAs[SeedStudyRow], nil
	case "concurrent":
		plan := concurrentCells(cfg)
		cells := make([]Cell, len(plan))
		for i, c := range plan {
			c := c
			cells[i] = Cell{
				Key: fmt.Sprintf("concurrent/%s+%s/%s", c.Mix[0], c.Mix[1], c.Policy),
				Run: func(ctx context.Context) (any, error) { return runConcurrentCell(traceCfg(ctx, cfg), c) },
				Prepare: func(ctx context.Context) (sim.BatchRun, FinishCell, error) {
					return prepareConcurrentCell(traceCfg(ctx, cfg), c)
				},
			}
		}
		return cells, assembleAs[ConcurrentRow], nil
	default:
		if !slices.Contains(ExperimentNames(), id) {
			return nil, nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, ExperimentNames())
		}
		cell := Cell{
			Key: id,
			Run: func(ctx context.Context) (any, error) { return RunRowsCtx(ctx, traceCfg(ctx, cfg), id) },
		}
		assemble := func(rows []any) any {
			if len(rows) == 1 && rows[0] != nil {
				return rows[0]
			}
			return nil
		}
		return []Cell{cell}, assemble, nil
	}
}
