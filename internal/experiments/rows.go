package experiments

import (
	"encoding/json"
	"fmt"
)

// decodeInto unmarshals data into a value of type T and returns it as the
// concrete type (not a pointer), matching what a cell's Run returns.
func decodeInto[T any](data []byte) (any, error) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// cellRowDecoders maps each experiment to the decoder for one cell's row,
// mirroring the per-cell types produced by Cells. Campaign experiments
// decode one row per cell; single-shot experiments have exactly one cell
// whose "row" is the whole typed result.
var cellRowDecoders = map[string]func([]byte) (any, error){
	"suite":      decodeInto[SuiteRow],
	"table2":     decodeInto[Table2Cell],
	"seeds":      decodeInto[SeedStudyRow],
	"concurrent": decodeInto[ConcurrentRow],
	"fig1":       decodeInto[*Fig1Result],
	"fig3":       decodeInto[[]Fig3Row],
	"fig45":      decodeInto[*Fig45Result],
	"fig6":       decodeInto[[]Fig6Row],
	"fig7":       decodeInto[[]Fig7Row],
	"fig8":       decodeInto[[]Fig8Row],
	"table3":     decodeInto[[]PerfEnergyCell],
	"fig9":       decodeInto[[]PerfEnergyCell],
	"ablation":   decodeInto[[]AblationRow],
	"manycore":   decodeInto[[]ManycoreRow],
	"noise":      decodeInto[[]NoiseRow],
	"library":    decodeInto[[]LibraryRow],
}

// DecodeCellRow rebuilds one cell's typed row from its JSON serialization.
// The durable job journal stores cell rows as JSON; recovery uses this to
// hand the pool's assembler the same concrete types a live run produces, so
// a recovered job's assembled result is bit-identical (modulo float64 JSON
// round-tripping, which Go's shortest-representation encoding makes exact).
func DecodeCellRow(experiment string, data []byte) (any, error) {
	dec, ok := cellRowDecoders[experiment]
	if !ok {
		return nil, fmt.Errorf("experiments: no row decoder for experiment %q", experiment)
	}
	row, err := dec(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: decode %s cell row: %w", experiment, err)
	}
	return row, nil
}
