package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// ConcurrentRow reports one (mix, policy) cell of the concurrent-application
// study.
type ConcurrentRow struct {
	Mix                    string
	Policy                 string
	AvgTempC, PeakTempC    float64
	CyclingMTTF, AgingMTTF float64
	CombinedMTTF           float64
	ExecTimeS              float64
}

// concurrentMixes are the co-scheduled application pairs: a hot compute app
// with a bursty one (the interesting case — their phases interleave on the
// shared cores), and two bursty apps.
var concurrentMixes = [][2]string{
	{"tachyon", "mpeg_dec"},
	{"mpeg_enc", "mpeg_dec"},
}

// buildMix composes a concurrent workload from halved application instances
// (so the total work stays comparable to a single-app run).
func buildMix(a, b string) (*workload.Concurrent, error) {
	mk := func(name string) (*workload.Application, error) {
		var sp workload.Spec
		switch name {
		case "tachyon":
			sp = workload.TachyonSpec(workload.Set1)
		case "mpeg_dec":
			sp = workload.MPEGDecSpec(workload.Set1)
		case "mpeg_enc":
			sp = workload.MPEGEncSpec(workload.Set1)
		default:
			return nil, fmt.Errorf("experiments: unknown mix app %q", name)
		}
		sp.Iterations /= 2
		return sp.Generate(), nil
	}
	appA, err := mk(a)
	if err != nil {
		return nil, err
	}
	appB, err := mk(b)
	if err != nil {
		return nil, err
	}
	return workload.NewConcurrent(appA, appB), nil
}

// concurrentCell identifies one independently runnable (mix, policy) unit
// of the concurrent-application campaign.
type concurrentCell struct {
	Mix    [2]string
	Policy string
}

// concurrentCells enumerates the campaign's cells in table order.
func concurrentCells(cfg Config) []concurrentCell {
	mixes := concurrentMixes
	if cfg.Quick {
		mixes = mixes[:1]
	}
	cells := make([]concurrentCell, 0, len(mixes)*len(table2Policies))
	for _, mix := range mixes {
		for _, pol := range table2Policies {
			cells = append(cells, concurrentCell{Mix: mix, Policy: pol})
		}
	}
	return cells
}

// prepareConcurrentCell splits one concurrent cell into its simulation and
// row mapper, the batchable form of runConcurrentCell.
func prepareConcurrentCell(cfg Config, c concurrentCell) (sim.BatchRun, FinishCell, error) {
	con, err := buildMix(c.Mix[0], c.Mix[1])
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	p, err := newPolicy(cfg, c.Policy)
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	// Rows need only scalars; stream them without the trace.
	rc := cfg.Run
	rc.DiscardTrace = true
	finish := func(r *sim.Result) (any, error) {
		return ConcurrentRow{
			Mix:          con.Name(),
			Policy:       c.Policy,
			AvgTempC:     r.AvgTempC,
			PeakTempC:    r.PeakTempC,
			CyclingMTTF:  r.CyclingMTTF,
			AgingMTTF:    r.AgingMTTF,
			CombinedMTTF: r.CombinedMTTF,
			ExecTimeS:    r.ExecTimeS,
		}, nil
	}
	return sim.BatchRun{Cfg: rc, Work: con, Policy: p}, finish, nil
}

// runConcurrentCell executes one cell of the concurrent campaign.
func runConcurrentCell(cfg Config, c concurrentCell) (ConcurrentRow, error) {
	br, finish, err := prepareConcurrentCell(cfg, c)
	if err != nil {
		return ConcurrentRow{}, err
	}
	r, err := sim.Run(br.Cfg, br.Work, br.Policy)
	if err != nil {
		return ConcurrentRow{}, fmt.Errorf("concurrent %s/%s: %w", br.Work.Name(), c.Policy, err)
	}
	row, err := finish(r)
	if err != nil {
		return ConcurrentRow{}, err
	}
	return row.(ConcurrentRow), nil
}

// Concurrent evaluates the paper's first future-work extension: two
// applications co-scheduled on the chip, with 12 threads contending for the
// four cores, under the three policies. Cancellation via ctx stops between
// cells.
func Concurrent(ctx context.Context, cfg Config) ([]ConcurrentRow, error) {
	plan := concurrentCells(cfg)
	rows := make([]ConcurrentRow, 0, len(plan))
	for _, c := range plan {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		row, err := runConcurrentCell(cfg, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatConcurrent renders the concurrent-application table.
func FormatConcurrent(rows []ConcurrentRow) string {
	var sb strings.Builder
	sb.WriteString("Concurrent applications (two apps co-scheduled; 12 threads on 4 cores)\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "mix\tpolicy\tavg T (C)\tpeak T (C)\tcycling MTTF (y)\taging MTTF (y)\tSOFR MTTF (y)\texec (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.0f\n",
			r.Mix, r.Policy, r.AvgTempC, r.PeakTempC, r.CyclingMTTF, r.AgingMTTF, r.CombinedMTTF, r.ExecTimeS)
	}
	w.Flush()
	return sb.String()
}
