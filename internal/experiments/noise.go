package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// NoiseRow reports the controller's results at one sensor-noise level.
type NoiseRow struct {
	// NoiseC is the sensor read noise standard deviation, degrees Celsius.
	NoiseC float64
	// Linux vs proposed headline metrics under that noise.
	LinuxAgingMTTF, ProposedAgingMTTF     float64
	LinuxCyclingMTTF, ProposedCyclingMTTF float64
	ProposedAvgTempC                      float64
}

// NoiseStudy sweeps the thermal-sensor noise level: real coretemp sensors
// are quantized to 1 C and noisy, and the paper's motivation for sensors
// over thermal guns and models rests on them being accurate *enough*. The
// study shows how much read noise the stress/aging state computation
// tolerates before the controller's advantage erodes.
func NoiseStudy(cfg Config) ([]NoiseRow, error) {
	levels := []float64{0, 0.5, 1, 2, 4}
	if cfg.Quick {
		levels = []float64{0, 2}
	}
	var rows []NoiseRow
	for _, noise := range levels {
		run := cfg.Run
		run.DiscardTrace = true // rows need only scalars
		run.Platform.SensorNoiseC = noise

		lin, err := sim.Run(run, workload.Tachyon(workload.Set1), sim.LinuxPolicy{})
		if err != nil {
			return nil, fmt.Errorf("noise %g linux: %w", noise, err)
		}
		pr, err := sim.Run(run, workload.Tachyon(workload.Set1), &sim.ProposedPolicy{})
		if err != nil {
			return nil, fmt.Errorf("noise %g proposed: %w", noise, err)
		}
		rows = append(rows, NoiseRow{
			NoiseC:              noise,
			LinuxAgingMTTF:      lin.AgingMTTF,
			ProposedAgingMTTF:   pr.AgingMTTF,
			LinuxCyclingMTTF:    lin.CyclingMTTF,
			ProposedCyclingMTTF: pr.CyclingMTTF,
			ProposedAvgTempC:    pr.AvgTempC,
		})
	}
	return rows, nil
}

// FormatNoiseStudy renders the sensor-noise sweep.
func FormatNoiseStudy(rows []NoiseRow) string {
	var sb strings.Builder
	sb.WriteString("Sensor-noise robustness (tachyon; noise added to every sensor read)\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "noise std (C)\tproposed avg T (C)\taging MTTF linux/proposed (y)\tcycling MTTF linux/proposed (y)")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%.1f\t%.2f / %.2f\t%.2f / %.2f\n",
			r.NoiseC, r.ProposedAvgTempC, r.LinuxAgingMTTF, r.ProposedAgingMTTF,
			r.LinuxCyclingMTTF, r.ProposedCyclingMTTF)
	}
	w.Flush()
	sb.WriteString("\nThe windowed stress/aging state tolerates realistic sensor noise; Linux is insensitive\n(it never reads the sensors).\n")
	return sb.String()
}
