package experiments

import (
	"fmt"
	"strings"

	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1Row reports the thermal character of one application under one thread
// assignment policy — the quantities the paper's motivational figure
// annotates (average temperature and thermal cycling).
type Fig1Row struct {
	App        string
	Assignment string // "linux-default" or "fixed-affinity"
	AvgTempC   float64
	PeakTempC  float64
	// CyclingMTTF summarizes thermal cycling (lower MTTF = more cycling).
	CyclingMTTF float64
	AgingMTTF   float64
}

// Fig1Result bundles the motivational experiment: face recognition and mpeg
// encoding executed under Linux's default allocation vs a fixed arbitrary
// thread-to-core assignment (two cores with two threads, two with one).
type Fig1Result struct {
	Rows []Fig1Row
	// DefaultSeq and PinnedSeq are the back-to-back scenario results (for
	// plotting the Fig. 1 style profile).
	DefaultSeq, PinnedSeq *sim.Result
}

// fig1Slots is the paper's arbitrary fixed assignment: cores 0 and 1 run two
// threads each, cores 2 and 3 run one each.
var fig1Slots = []int{0, 1, 2, 3, 0, 1}

// Fig1 reproduces the motivational example of Section 3.
func Fig1(cfg Config) (*Fig1Result, error) {
	res := &Fig1Result{}
	for _, appName := range []string{"face_rec", "mpeg_enc"} {
		for _, assignment := range []string{"linux-default", "fixed-affinity"} {
			app, err := workload.ByName(appName, workload.Set1)
			if err != nil {
				return nil, err
			}
			var pol sim.Policy
			if assignment == "linux-default" {
				pol = sim.LinuxPolicy{Kind: governor.Ondemand}
			} else {
				pol = &sim.FixedAffinityPolicy{Slots: fig1Slots, Kind: governor.Ondemand}
			}
			// Rows need only scalars; stream them without the trace.
			rc := cfg.Run
			rc.DiscardTrace = true
			r, err := sim.Run(rc, app, pol)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig1Row{
				App:         appName,
				Assignment:  assignment,
				AvgTempC:    r.AvgTempC,
				PeakTempC:   r.PeakTempC,
				CyclingMTTF: r.CyclingMTTF,
				AgingMTTF:   r.AgingMTTF,
			})
		}
	}
	// Back-to-back profile for plotting.
	seq, err := scenarioApps("face_rec-mpeg_enc", workload.Set1)
	if err != nil {
		return nil, err
	}
	res.DefaultSeq, err = sim.Run(cfg.Run, seq, sim.LinuxPolicy{Kind: governor.Ondemand})
	if err != nil {
		return nil, err
	}
	seq, err = scenarioApps("face_rec-mpeg_enc", workload.Set1)
	if err != nil {
		return nil, err
	}
	res.PinnedSeq, err = sim.Run(cfg.Run, seq, &sim.FixedAffinityPolicy{Slots: fig1Slots, Kind: governor.Ondemand})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FormatFig1 renders the motivational comparison.
func FormatFig1(r *Fig1Result) string {
	var sb strings.Builder
	sb.WriteString("Fig. 1 — thread-to-core affinity influences thermal profile\n")
	sb.WriteString("(face recognition and mpeg encoding, Linux default vs fixed assignment)\n\n")
	w := tableWriter(&sb)
	fmt.Fprintln(w, "app\tassignment\tavg T (C)\tpeak T (C)\tcycling MTTF (y)\taging MTTF (y)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.2f\t%.2f\n",
			row.App, row.Assignment, row.AvgTempC, row.PeakTempC, row.CyclingMTTF, row.AgingMTTF)
	}
	w.Flush()
	fmt.Fprintf(&sb, "\nback-to-back profile (face_rec-mpeg_enc): default %0.fs, pinned %0.fs\n",
		r.DefaultSeq.ExecTimeS, r.PinnedSeq.ExecTimeS)
	return sb.String()
}
