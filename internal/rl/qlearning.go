// Package rl implements the tabular Q-learning machinery of the paper
// (Watkins-style Q-learning, Eq. 7) together with the learning-phase
// management of Section 5.3: an exponentially decaying learning rate moves
// the agent through exploration, exploration-exploitation and exploitation,
// and a snapshot of the Q-table at the end of exploration supports the
// dual-table intra-application re-learning of Section 5.4.
package rl

import (
	"fmt"
	"math/rand"
)

// QTable is a dense state-action value table.
type QTable struct {
	numStates, numActions int
	q                     []float64 // row-major [state][action]
}

// NewQTable creates a zero-initialized table.
func NewQTable(numStates, numActions int) *QTable {
	if numStates <= 0 || numActions <= 0 {
		panic(fmt.Sprintf("rl: table dimensions must be positive, got %dx%d", numStates, numActions))
	}
	return &QTable{
		numStates:  numStates,
		numActions: numActions,
		q:          make([]float64, numStates*numActions),
	}
}

// NumStates returns the state count.
func (t *QTable) NumStates() int { return t.numStates }

// NumActions returns the action count.
func (t *QTable) NumActions() int { return t.numActions }

// Get returns Q(s, a).
func (t *QTable) Get(s, a int) float64 { return t.q[s*t.numActions+a] }

// Set assigns Q(s, a).
func (t *QTable) Set(s, a int, v float64) { t.q[s*t.numActions+a] = v }

// MaxQ returns max_a Q(s, a).
func (t *QTable) MaxQ(s int) float64 {
	row := t.q[s*t.numActions : (s+1)*t.numActions]
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// BestAction returns argmax_a Q(s, a); ties break toward the lowest index.
func (t *QTable) BestAction(s int) int {
	row := t.q[s*t.numActions : (s+1)*t.numActions]
	best, bestV := 0, row[0]
	for a, v := range row[1:] {
		if v > bestV {
			best, bestV = a+1, v
		}
	}
	return best
}

// Update applies the Q-learning update of Eq. 7:
//
//	Q(s,a) += alpha * (r + gamma*max_a' Q(s',a') - Q(s,a))
func (t *QTable) Update(s, a int, r, alpha, gamma float64, next int) {
	idx := s*t.numActions + a
	t.q[idx] += alpha * (r + gamma*t.MaxQ(next) - t.q[idx])
}

// UpdateSARSA applies the on-policy SARSA update, which bootstraps from the
// action actually selected in the next state rather than the greedy maximum:
//
//	Q(s,a) += alpha * (r + gamma*Q(s',a') - Q(s,a))
//
// Provided for algorithm comparisons against the paper's Q-learning.
func (t *QTable) UpdateSARSA(s, a int, r, alpha, gamma float64, next, nextAction int) {
	idx := s*t.numActions + a
	t.q[idx] += alpha * (r + gamma*t.Get(next, nextAction) - t.q[idx])
}

// Reset zeroes every entry.
func (t *QTable) Reset() {
	for i := range t.q {
		t.q[i] = 0
	}
}

// Clone returns a deep copy.
func (t *QTable) Clone() *QTable {
	c := NewQTable(t.numStates, t.numActions)
	copy(c.q, t.q)
	return c
}

// CopyFrom overwrites this table with the contents of other (which must have
// identical dimensions).
func (t *QTable) CopyFrom(other *QTable) {
	if t.numStates != other.numStates || t.numActions != other.numActions {
		panic(fmt.Sprintf("rl: CopyFrom dimension mismatch: %dx%d vs %dx%d",
			t.numStates, t.numActions, other.numStates, other.numActions))
	}
	copy(t.q, other.q)
}

// Phase is the learning phase of Section 5.3.
type Phase int

// The three learning phases.
const (
	// Exploration: alpha near 1, actions chosen mostly at random.
	Exploration Phase = iota
	// ExplorationExploitation: best actions chosen, table still updated
	// with a meaningful fraction of the reward.
	ExplorationExploitation
	// Exploitation: best actions chosen, table essentially frozen.
	Exploitation
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Exploration:
		return "exploration"
	case ExplorationExploitation:
		return "exploration-exploitation"
	case Exploitation:
		return "exploitation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// AgentConfig parameterizes the learning agent.
type AgentConfig struct {
	// NumStates and NumActions size the Q-table.
	NumStates, NumActions int
	// Gamma is the discount rate of Eq. 7.
	Gamma float64
	// AlphaDecay is the per-epoch multiplicative decay of the learning
	// rate (the "exponentially decreasing function" of Section 5.3).
	AlphaDecay float64
	// ExploreThreshold: alpha above this means the exploration phase.
	ExploreThreshold float64
	// ExploitThreshold: alpha below this means the exploitation phase.
	ExploitThreshold float64
	// AlphaExp is the learning rate restored on an intra-application
	// variation (Section 5.4), resuming moderate learning.
	AlphaExp float64
	// Hysteresis is the Q-value margin for sticky action selection: when
	// greedy, the previously applied action is kept unless the best
	// action's Q value exceeds the previous action's by more than this
	// margin. This suppresses action flapping at state-bin boundaries,
	// which would itself induce thermal cycling. Zero disables stickiness.
	Hysteresis float64
	// Seed drives exploratory action selection.
	Seed int64
}

// DefaultAgentConfig returns the tuned defaults used by the controller.
func DefaultAgentConfig(numStates, numActions int) AgentConfig {
	return AgentConfig{
		NumStates:        numStates,
		NumActions:       numActions,
		Gamma:            0.8,
		AlphaDecay:       0.87,
		ExploreThreshold: 0.55,
		ExploitThreshold: 0.06,
		AlphaExp:         0.20,
		Hysteresis:       0.30,
		Seed:             42,
	}
}

// Agent is a Q-learning agent with phase management and a dual Q-table: the
// live table plus a snapshot captured at the end of the exploration phase
// (Section 5.4 "the agent maintains two Q-Tables").
type Agent struct {
	cfg   AgentConfig
	q     *QTable
	snap  *QTable
	alpha float64
	rng   *rand.Rand

	snapTaken bool
	epochs    int
	relearns  int
	restores  int
	adoptions int
	// curve, when non-nil, receives the TD error of every update. The nil
	// receiver pattern keeps the disabled path to a single branch.
	curve *LearningSampler
	// lastExplored records whether the most recent action selection was
	// exploratory (random) rather than greedy — observable per-epoch in the
	// decision trace.
	lastExplored bool
}

// NewAgent builds a fresh agent with alpha = 1 (full exploration).
func NewAgent(cfg AgentConfig) *Agent {
	initMetrics()
	return &Agent{
		cfg:   cfg,
		q:     NewQTable(cfg.NumStates, cfg.NumActions),
		alpha: 1.0,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Q exposes the live Q-table (read-mostly; the controller may inspect it).
func (a *Agent) Q() *QTable { return a.q }

// Alpha returns the current learning rate.
func (a *Agent) Alpha() float64 { return a.alpha }

// Epochs returns how many decision epochs the agent has processed.
func (a *Agent) Epochs() int { return a.epochs }

// Relearns returns how many times the agent restarted learning from scratch
// (inter-application variations).
func (a *Agent) Relearns() int { return a.relearns }

// Restores returns how many times the agent restored the exploration-end
// snapshot (intra-application variations).
func (a *Agent) Restores() int { return a.restores }

// Phase returns the current learning phase derived from alpha.
func (a *Agent) Phase() Phase {
	switch {
	case a.alpha >= a.cfg.ExploreThreshold:
		return Exploration
	case a.alpha <= a.cfg.ExploitThreshold:
		return Exploitation
	default:
		return ExplorationExploitation
	}
}

// SelectAction picks the next action for the state: with probability alpha a
// uniformly random action (exploration), otherwise the greedy action. As
// alpha decays this smoothly moves the agent from arbitrary selection
// (Section 5.3 exploration) to pure exploitation.
func (a *Agent) SelectAction(state int) int {
	return a.SelectActionSticky(state, -1)
}

// SelectActionSticky is SelectAction with hysteresis: when selecting
// greedily and prevAction is valid, the previous action is kept unless the
// greedy action's Q value beats it by more than the configured Hysteresis
// margin. Pass prevAction = -1 to disable stickiness for this call.
func (a *Agent) SelectActionSticky(state, prevAction int) int {
	if a.rng.Float64() < a.alpha {
		mActionsExplore.Inc()
		a.lastExplored = true
		return a.rng.Intn(a.cfg.NumActions)
	}
	mActionsGreedy.Inc()
	a.lastExplored = false
	best := a.q.BestAction(state)
	if prevAction >= 0 && prevAction < a.cfg.NumActions && prevAction != best &&
		a.q.Get(state, prevAction) >= a.q.Get(state, best)-a.cfg.Hysteresis {
		return prevAction
	}
	return best
}

// LastSelectionExplored reports whether the most recent SelectAction /
// SelectActionSticky call took the exploratory branch.
func (a *Agent) LastSelectionExplored() bool { return a.lastExplored }

// AttachSampler points the agent's updates at a learning-curve sampler (nil
// detaches). The sampler only observes TD errors; it never touches the
// action-selection RNG, so attaching one cannot perturb the learned policy.
func (a *Agent) AttachSampler(s *LearningSampler) { a.curve = s }

// Observe applies the Eq. 7 update for the transition
// (prevState, action) -> reward, newState using the current learning rate.
func (a *Agent) Observe(prevState, action int, reward float64, newState int) {
	mReward.Observe(reward)
	if a.curve != nil {
		a.curve.ObserveTD(reward + a.cfg.Gamma*a.q.MaxQ(newState) - a.q.Get(prevState, action))
	}
	a.q.Update(prevState, action, reward, a.alpha, a.cfg.Gamma, newState)
}

// ObserveSARSA applies the on-policy update using the action selected in the
// new state (see QTable.UpdateSARSA).
func (a *Agent) ObserveSARSA(prevState, action int, reward float64, newState, newAction int) {
	mReward.Observe(reward)
	if a.curve != nil {
		a.curve.ObserveTD(reward + a.cfg.Gamma*a.q.Get(newState, newAction) - a.q.Get(prevState, action))
	}
	a.q.UpdateSARSA(prevState, action, reward, a.alpha, a.cfg.Gamma, newState, newAction)
}

// EndEpoch advances the learning-rate schedule. The Q-table snapshot is
// captured the first time alpha decays past the exploration threshold —
// i.e. at the end of the exploration phase.
func (a *Agent) EndEpoch() {
	a.epochs++
	a.alpha *= a.cfg.AlphaDecay
	mEpochs.Inc()
	mAlpha.Set(a.alpha)
	if !a.snapTaken && a.alpha < a.cfg.ExploreThreshold {
		a.snap = a.q.Clone()
		a.snapTaken = true
	}
}

// Relearn resets the Q-table to zero and alpha to 1, restarting learning
// from scratch. The controller invokes it on an inter-application variation
// (Section 5.4).
func (a *Agent) Relearn() {
	a.q.Reset()
	a.alpha = 1.0
	a.snapTaken = false
	a.snap = nil
	a.relearns++
	mQResets.Inc()
}

// RestoreSnapshot reloads the Q values captured at the end of the
// exploration phase and sets alpha to AlphaExp. The controller invokes it on
// an intra-application variation (Section 5.4). If no snapshot exists yet
// (still exploring) it is a no-op apart from the alpha bump.
func (a *Agent) RestoreSnapshot() {
	if a.snapTaken {
		a.q.CopyFrom(a.snap)
	}
	a.alpha = a.cfg.AlphaExp
	a.restores++
	mRestores.Inc()
}

// AdoptTable replaces the live Q-table with a copy of t and sets the
// learning rate, e.g. to resume a previously learned policy for a
// re-recognized application. The table must match the agent's dimensions.
func (a *Agent) AdoptTable(t *QTable, alpha float64) {
	a.q.CopyFrom(t)
	a.alpha = alpha
	a.adoptions++
	mAdoptions.Inc()
}

// Adoptions returns how many times a stored policy was adopted via
// AdoptTable.
func (a *Agent) Adoptions() int { return a.adoptions }

// SetAlpha overrides the learning rate directly (clamped to [0, 1]), e.g.
// to freeze learning after an adopted policy is confirmed.
func (a *Agent) SetAlpha(alpha float64) {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	a.alpha = alpha
}

// Converged reports whether the agent has reached the exploitation phase.
func (a *Agent) Converged() bool { return a.Phase() == Exploitation }

// EpochsToConverge returns the number of epochs needed for alpha to decay
// from 1 to the exploitation threshold under the configured schedule; this
// is the analytic training-time measure plotted in Fig. 8.
func (cfg AgentConfig) EpochsToConverge() int {
	n := 0
	alpha := 1.0
	for alpha > cfg.ExploitThreshold {
		alpha *= cfg.AlphaDecay
		n++
		if n > 1_000_000 {
			break
		}
	}
	return n
}
