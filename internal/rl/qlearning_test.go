package rl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewQTableValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for dims %v", dims)
				}
			}()
			NewQTable(dims[0], dims[1])
		}()
	}
}

func TestQTableGetSet(t *testing.T) {
	q := NewQTable(3, 4)
	if q.NumStates() != 3 || q.NumActions() != 4 {
		t.Fatal("dimension accessors wrong")
	}
	q.Set(2, 3, 1.5)
	q.Set(0, 0, -2)
	if q.Get(2, 3) != 1.5 || q.Get(0, 0) != -2 {
		t.Error("Get/Set roundtrip failed")
	}
	if q.Get(1, 1) != 0 {
		t.Error("fresh entries must be zero")
	}
}

func TestMaxQAndBestAction(t *testing.T) {
	q := NewQTable(2, 3)
	q.Set(0, 0, 1)
	q.Set(0, 1, 5)
	q.Set(0, 2, 3)
	if q.MaxQ(0) != 5 {
		t.Errorf("MaxQ = %g, want 5", q.MaxQ(0))
	}
	if q.BestAction(0) != 1 {
		t.Errorf("BestAction = %d, want 1", q.BestAction(0))
	}
	// Ties break to lowest index.
	if q.BestAction(1) != 0 {
		t.Errorf("all-zero BestAction = %d, want 0", q.BestAction(1))
	}
}

func TestUpdateEquation(t *testing.T) {
	q := NewQTable(2, 2)
	q.Set(0, 0, 1.0)
	q.Set(1, 0, 4.0)
	q.Set(1, 1, 2.0)
	// Q(0,0) += alpha*(r + gamma*max(Q(1,.)) - Q(0,0))
	//        = 1 + 0.5*(2 + 0.9*4 - 1) = 1 + 0.5*4.6 = 3.3
	q.Update(0, 0, 2.0, 0.5, 0.9, 1)
	if math.Abs(q.Get(0, 0)-3.3) > 1e-12 {
		t.Errorf("Update result = %g, want 3.3", q.Get(0, 0))
	}
}

func TestUpdateFixedPoint(t *testing.T) {
	// Repeated updates with a constant reward converge to r/(1-gamma) for a
	// self-loop.
	q := NewQTable(1, 1)
	for i := 0; i < 2000; i++ {
		q.Update(0, 0, 1.0, 0.2, 0.5, 0)
	}
	want := 1.0 / (1 - 0.5)
	if math.Abs(q.Get(0, 0)-want) > 1e-6 {
		t.Errorf("fixed point = %g, want %g", q.Get(0, 0), want)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	q := NewQTable(2, 2)
	q.Set(1, 1, 7)
	c := q.Clone()
	q.Set(1, 1, 0)
	if c.Get(1, 1) != 7 {
		t.Error("Clone must be a deep copy")
	}
	q.CopyFrom(c)
	if q.Get(1, 1) != 7 {
		t.Error("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dimension mismatch")
		}
	}()
	q.CopyFrom(NewQTable(3, 3))
}

func TestReset(t *testing.T) {
	q := NewQTable(2, 2)
	q.Set(0, 1, 9)
	q.Reset()
	for s := 0; s < 2; s++ {
		for a := 0; a < 2; a++ {
			if q.Get(s, a) != 0 {
				t.Errorf("Q(%d,%d) = %g after reset", s, a, q.Get(s, a))
			}
		}
	}
}

func TestPhaseString(t *testing.T) {
	if Exploration.String() != "exploration" ||
		ExplorationExploitation.String() != "exploration-exploitation" ||
		Exploitation.String() != "exploitation" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase string wrong")
	}
}

func TestAgentPhaseProgression(t *testing.T) {
	cfg := DefaultAgentConfig(4, 4)
	a := NewAgent(cfg)
	if a.Phase() != Exploration {
		t.Fatalf("fresh agent phase = %v, want exploration", a.Phase())
	}
	seen := map[Phase]bool{a.Phase(): true}
	for i := 0; i < 200; i++ {
		a.EndEpoch()
		seen[a.Phase()] = true
	}
	for _, p := range []Phase{Exploration, ExplorationExploitation, Exploitation} {
		if !seen[p] {
			t.Errorf("phase %v never reached", p)
		}
	}
	if !a.Converged() {
		t.Error("agent should have converged")
	}
	if a.Epochs() != 200 {
		t.Errorf("Epochs = %d, want 200", a.Epochs())
	}
}

func TestAgentAlphaDecays(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	prev := a.Alpha()
	for i := 0; i < 50; i++ {
		a.EndEpoch()
		if a.Alpha() >= prev {
			t.Fatal("alpha must strictly decay")
		}
		prev = a.Alpha()
	}
}

func TestAgentSelectActionExploresAndExploits(t *testing.T) {
	cfg := DefaultAgentConfig(1, 4)
	a := NewAgent(cfg)
	a.Q().Set(0, 2, 10) // best action is 2
	// Fresh agent (alpha=1): all selections random -> all actions seen.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[a.SelectAction(0)] = true
	}
	if len(seen) != 4 {
		t.Errorf("exploration should visit all actions, saw %v", seen)
	}
	// Converged agent: always greedy.
	for !a.Converged() {
		a.EndEpoch()
	}
	// alpha is tiny but nonzero; over a few draws greedy dominates.
	greedy := 0
	for i := 0; i < 100; i++ {
		if a.SelectAction(0) == 2 {
			greedy++
		}
	}
	if greedy < 90 {
		t.Errorf("converged agent picked best action only %d/100 times", greedy)
	}
}

func TestAgentObserve(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	a.Observe(0, 1, 5, 1)
	if a.Q().Get(0, 1) == 0 {
		t.Error("Observe should have updated the table")
	}
}

func TestAgentRelearn(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	a.Observe(0, 0, 5, 1)
	for i := 0; i < 30; i++ {
		a.EndEpoch()
	}
	a.Relearn()
	if a.Alpha() != 1 {
		t.Errorf("alpha after relearn = %g, want 1", a.Alpha())
	}
	if a.Q().Get(0, 0) != 0 {
		t.Error("Q-table should be zeroed after relearn")
	}
	if a.Relearns() != 1 {
		t.Errorf("Relearns = %d, want 1", a.Relearns())
	}
	if a.Phase() != Exploration {
		t.Error("relearn must restart exploration")
	}
}

func TestAgentSnapshotRestore(t *testing.T) {
	cfg := DefaultAgentConfig(2, 2)
	a := NewAgent(cfg)
	// Learn something during exploration.
	a.Observe(0, 0, 10, 1)
	snapVal := a.Q().Get(0, 0)
	// Decay past the exploration threshold -> snapshot taken.
	for a.Phase() == Exploration {
		a.EndEpoch()
	}
	// Keep learning afterwards; live table drifts from the snapshot.
	a.Observe(0, 0, -50, 1)
	if a.Q().Get(0, 0) == snapVal {
		t.Fatal("live table should have drifted")
	}
	a.RestoreSnapshot()
	if got := a.Q().Get(0, 0); math.Abs(got-snapVal) > 1e-9 {
		t.Errorf("restored Q = %g, want snapshot value %g", got, snapVal)
	}
	if a.Alpha() != cfg.AlphaExp {
		t.Errorf("alpha after restore = %g, want %g", a.Alpha(), cfg.AlphaExp)
	}
	if a.Restores() != 1 {
		t.Errorf("Restores = %d, want 1", a.Restores())
	}
}

func TestAgentRestoreWithoutSnapshot(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	a.Observe(0, 0, 3, 0)
	v := a.Q().Get(0, 0)
	a.RestoreSnapshot() // no snapshot yet: Q untouched, alpha bumped
	if a.Q().Get(0, 0) != v {
		t.Error("restore without snapshot must not clobber the table")
	}
}

func TestEpochsToConvergeGrowsWithThreshold(t *testing.T) {
	a := DefaultAgentConfig(2, 2)
	b := a
	b.AlphaDecay = 0.99 // slower decay -> more epochs
	if b.EpochsToConverge() <= a.EpochsToConverge() {
		t.Error("slower decay must require more epochs")
	}
	if a.EpochsToConverge() <= 0 {
		t.Error("default config must require at least one epoch")
	}
}

// Property: SelectAction always returns a valid action index.
func TestSelectActionInRange(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(5, 7))
	f := func(s uint8, decays uint8) bool {
		for i := 0; i < int(decays%16); i++ {
			a.EndEpoch()
		}
		act := a.SelectAction(int(s) % 5)
		return act >= 0 && act < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A classic sanity check: the agent learns a trivial MDP where action 1 is
// always better, and ends up preferring it everywhere.
func TestAgentLearnsTrivialMDP(t *testing.T) {
	cfg := DefaultAgentConfig(3, 2)
	cfg.AlphaDecay = 0.995 // learn long enough
	a := NewAgent(cfg)
	state := 0
	for i := 0; i < 3000; i++ {
		act := a.SelectAction(state)
		reward := -1.0
		if act == 1 {
			reward = 1.0
		}
		next := (state + 1) % 3
		a.Observe(state, act, reward, next)
		a.EndEpoch()
		state = next
	}
	for s := 0; s < 3; s++ {
		if a.Q().BestAction(s) != 1 {
			t.Errorf("state %d: best action = %d, want 1", s, a.Q().BestAction(s))
		}
	}
}

func BenchmarkQTableUpdate(b *testing.B) {
	q := NewQTable(12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Update(i%12, i%12, 0.5, 0.1, 0.8, (i+1)%12)
	}
}

func BenchmarkAgentSelectAction(b *testing.B) {
	a := NewAgent(DefaultAgentConfig(12, 12))
	for i := 0; i < 30; i++ {
		a.EndEpoch()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SelectActionSticky(i%12, (i+1)%12)
	}
}

func TestUpdateSARSAEquation(t *testing.T) {
	q := NewQTable(2, 2)
	q.Set(0, 0, 1.0)
	q.Set(1, 0, 4.0)
	q.Set(1, 1, 2.0)
	// SARSA bootstraps from the selected next action (1), not the max (0):
	// Q(0,0) += 0.5*(2 + 0.9*Q(1,1) - 1) = 1 + 0.5*(2 + 1.8 - 1) = 2.4
	q.UpdateSARSA(0, 0, 2.0, 0.5, 0.9, 1, 1)
	if math.Abs(q.Get(0, 0)-2.4) > 1e-12 {
		t.Errorf("SARSA update = %g, want 2.4", q.Get(0, 0))
	}
}

func TestSARSAVsQLearningDiffer(t *testing.T) {
	qa, qb := NewQTable(2, 2), NewQTable(2, 2)
	for _, q := range []*QTable{qa, qb} {
		q.Set(1, 0, 4.0)
		q.Set(1, 1, 2.0)
	}
	qa.Update(0, 0, 1, 0.5, 0.9, 1)         // bootstraps max = 4
	qb.UpdateSARSA(0, 0, 1, 0.5, 0.9, 1, 1) // bootstraps Q(1,1) = 2
	if qa.Get(0, 0) <= qb.Get(0, 0) {
		t.Error("Q-learning should bootstrap optimistically vs SARSA here")
	}
}

func TestAgentObserveSARSA(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	a.ObserveSARSA(0, 1, 5, 1, 0)
	if a.Q().Get(0, 1) == 0 {
		t.Error("ObserveSARSA should have updated the table")
	}
}

func TestAdoptTable(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	trained := NewQTable(2, 2)
	trained.Set(1, 1, 9)
	a.AdoptTable(trained, 0.05)
	if a.Q().Get(1, 1) != 9 {
		t.Error("AdoptTable did not copy the table")
	}
	if a.Alpha() != 0.05 {
		t.Errorf("alpha = %g, want 0.05", a.Alpha())
	}
	if a.Adoptions() != 1 {
		t.Errorf("Adoptions = %d, want 1", a.Adoptions())
	}
	// Adopted table is a copy: mutating the source must not leak.
	trained.Set(1, 1, -5)
	if a.Q().Get(1, 1) != 9 {
		t.Error("AdoptTable must deep-copy")
	}
}
