package rl

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultConvergenceWindow is the sliding window (in decision epochs) over
// which the greedy policy must stay unchanged for the convergence detector to
// declare the agent converged. The alpha schedule reaches the exploitation
// threshold after ~21 epochs (AgentConfig.EpochsToConverge), so an 8-epoch
// stability window distinguishes "alpha happens to be small" from "the argmax
// policy actually stopped moving".
const DefaultConvergenceWindow = 8

// CurvePoint is one decision epoch on a learning curve. Reward is the Eq. 8
// reward granted this epoch (0 when the epoch had no reward, e.g. the first),
// AbsTD the magnitude of the temporal-difference error of the Eq. 7 update,
// Alpha the learning rate after the epoch (alpha doubles as the epsilon-greedy
// exploration probability in this agent), Coverage the fraction of Q-table
// states visited so far, Stability the fraction of states whose greedy action
// was unchanged from the previous epoch, and Damage the thermal-cycling
// stress closed while this epoch's action was in force (per-core split lives
// in the run summary).
type CurvePoint struct {
	Epoch     int     `json:"epoch"`
	TimeS     float64 `json:"time_s"`
	Reward    float64 `json:"reward"`
	AbsTD     float64 `json:"abs_td"`
	Alpha     float64 `json:"alpha"`
	Coverage  float64 `json:"coverage"`
	Stability float64 `json:"stability"`
	Damage    float64 `json:"damage"`
}

// CurveSummary condenses one sampled run: where (if anywhere) the greedy
// policy converged, how much of the table was explored, and which cores and
// actions absorbed the thermal-cycling damage.
type CurveSummary struct {
	// Epochs is the number of decision epochs sampled.
	Epochs int `json:"epochs"`
	// ConvergeEpoch is the first epoch of the window over which the greedy
	// policy never changed again; -1 if the detector never fired.
	ConvergeEpoch int `json:"converge_epoch"`
	// Coverage is the final state-visit coverage in [0, 1].
	Coverage float64 `json:"coverage"`
	// MeanReward averages the non-NaN epoch rewards.
	MeanReward float64 `json:"mean_reward"`
	// FinalAlpha is the learning rate after the last epoch.
	FinalAlpha float64 `json:"final_alpha"`
	// CoreDamage is the attributed thermal-cycling stress per core (empty
	// when the run carried no attribution feed).
	CoreDamage []float64 `json:"core_damage,omitempty"`
	// CoreDamageShare is CoreDamage normalized to sum to 1 (empty when no
	// damage was attributed).
	CoreDamageShare []float64 `json:"core_damage_share,omitempty"`
	// ActionDamage is the attributed stress per action index.
	ActionDamage []float64 `json:"action_damage,omitempty"`
}

// LearningSampler records a learning curve for one agent across one run: one
// CurvePoint per decision epoch plus a greedy-policy convergence detector and
// a damage-attribution sink. It follows the telemetry.Tracer nil-receiver
// contract — a nil *LearningSampler is a valid, disabled sampler whose
// methods return immediately without allocating, so policies keep a sampler
// field permanently and hot paths pay one nil check when sampling is off.
//
// A sampler is driven from a single policy goroutine; it is not safe for
// concurrent use (the run loop is single-threaded per cell).
type LearningSampler struct {
	window int

	points []CurvePoint

	// Per-epoch accumulators, reset by EndEpoch.
	tdSum         float64
	tdN           int
	pendingDamage float64

	// State-visit coverage over the Q-table.
	visited      []bool
	visitedCount int

	// Greedy-policy stability: argmax_a Q(s, a) per state, this epoch vs
	// the previous one.
	prevGreedy, curGreedy []int
	haveGreedy            bool
	stableSince           int
	haveStable            bool
	convergedEpoch        int

	rewardSum float64
	rewardN   int

	coreDamage   []float64
	actionDamage []float64

	finalized bool
}

// NewLearningSampler returns an enabled sampler. window is the number of
// consecutive epochs the greedy policy must stay unchanged before the
// convergence detector fires; <= 0 selects DefaultConvergenceWindow.
func NewLearningSampler(window int) *LearningSampler {
	if window <= 0 {
		window = DefaultConvergenceWindow
	}
	return &LearningSampler{window: window, convergedEpoch: -1}
}

// ObserveTD records the temporal-difference error of one Eq. 7 (or SARSA)
// update; magnitudes are averaged per epoch.
func (s *LearningSampler) ObserveTD(td float64) {
	if s == nil {
		return
	}
	if !math.IsNaN(td) && !math.IsInf(td, 0) {
		s.tdSum += math.Abs(td)
		s.tdN++
	}
}

// ObserveCycleDamage attributes one closed thermal cycle's stress delta to
// the core it closed on and the action in force when it closed. The damage is
// also folded into the next CurvePoint so the curve shows when cycling
// damage accrued.
func (s *LearningSampler) ObserveCycleDamage(core, action int, damage float64) {
	if s == nil || damage <= 0 {
		return
	}
	s.pendingDamage += damage
	if core >= 0 {
		for len(s.coreDamage) <= core {
			s.coreDamage = append(s.coreDamage, 0)
		}
		s.coreDamage[core] += damage
	}
	if action >= 0 {
		for len(s.actionDamage) <= action {
			s.actionDamage = append(s.actionDamage, 0)
		}
		s.actionDamage[action] += damage
	}
}

// EndEpoch closes one decision epoch: epoch is the policy's 1-based epoch
// counter, timeS the simulated time, reward the Eq. 8 reward granted this
// epoch (NaN on the first epoch, recorded as 0), alpha the learning rate
// after the epoch, state/action the state observed and action applied, and q
// the live Q-table (used for coverage and greedy-stability; may be nil, which
// skips both).
func (s *LearningSampler) EndEpoch(epoch int, timeS, reward, alpha float64, state, action int, q *QTable) {
	if s == nil {
		return
	}
	p := CurvePoint{
		Epoch:  epoch,
		TimeS:  timeS,
		Alpha:  alpha,
		Damage: s.pendingDamage,
	}
	s.pendingDamage = 0
	if !math.IsNaN(reward) {
		p.Reward = reward
		s.rewardSum += reward
		s.rewardN++
	}
	if s.tdN > 0 {
		p.AbsTD = s.tdSum / float64(s.tdN)
	}
	s.tdSum, s.tdN = 0, 0

	if q != nil {
		states := q.NumStates()
		if len(s.visited) != states {
			s.visited = make([]bool, states)
			s.visitedCount = 0
		}
		if state >= 0 && state < states && !s.visited[state] {
			s.visited[state] = true
			s.visitedCount++
		}
		p.Coverage = float64(s.visitedCount) / float64(states)

		if len(s.curGreedy) != states {
			s.curGreedy = make([]int, states)
			s.prevGreedy = make([]int, states)
			s.haveGreedy = false
		}
		for st := 0; st < states; st++ {
			s.curGreedy[st] = q.BestAction(st)
		}
		if s.haveGreedy {
			same := 0
			changed := false
			for st := 0; st < states; st++ {
				if s.curGreedy[st] == s.prevGreedy[st] {
					same++
				} else {
					changed = true
				}
			}
			p.Stability = float64(same) / float64(states)
			if changed {
				s.haveStable = false
			}
		} else {
			// First observation of the greedy policy: it is trivially
			// stable with respect to itself.
			p.Stability = 1
		}
		if !s.haveStable {
			s.stableSince = epoch
			s.haveStable = true
		}
		if s.convergedEpoch < 0 && epoch-s.stableSince+1 >= s.window {
			s.convergedEpoch = s.stableSince
		}
		s.prevGreedy, s.curGreedy = s.curGreedy, s.prevGreedy
		s.haveGreedy = true
	}

	s.points = append(s.points, p)
}

// Points returns the sampled curve (nil for a disabled sampler).
func (s *LearningSampler) Points() []CurvePoint {
	if s == nil {
		return nil
	}
	return s.points
}

// ConvergedEpoch returns the epoch at which the greedy policy became
// permanently stable (per the sliding-window detector), or -1 if the run
// never converged. A nil sampler returns -1.
func (s *LearningSampler) ConvergedEpoch() int {
	if s == nil {
		return -1
	}
	return s.convergedEpoch
}

// Summary condenses the sampled run.
func (s *LearningSampler) Summary() CurveSummary {
	if s == nil {
		return CurveSummary{ConvergeEpoch: -1}
	}
	sum := CurveSummary{
		Epochs:        len(s.points),
		ConvergeEpoch: s.convergedEpoch,
	}
	if len(s.points) > 0 {
		sum.FinalAlpha = s.points[len(s.points)-1].Alpha
		sum.Coverage = s.points[len(s.points)-1].Coverage
	}
	if s.rewardN > 0 {
		sum.MeanReward = s.rewardSum / float64(s.rewardN)
	}
	if len(s.coreDamage) > 0 {
		sum.CoreDamage = append([]float64(nil), s.coreDamage...)
		total := 0.0
		for _, d := range s.coreDamage {
			total += d
		}
		if total > 0 {
			sum.CoreDamageShare = make([]float64, len(s.coreDamage))
			for i, d := range s.coreDamage {
				sum.CoreDamageShare[i] = d / total
			}
		}
	}
	if len(s.actionDamage) > 0 {
		sum.ActionDamage = append([]float64(nil), s.actionDamage...)
	}
	return sum
}

// Finalize marks the run complete and folds it into the process-wide learning
// health counters exported via LearningStats (and the registry metrics fleet
// coordinators federate). Safe to call once per run; a nil sampler no-ops.
func (s *LearningSampler) Finalize() {
	if s == nil || s.finalized {
		return
	}
	s.finalized = true
	initMetrics()
	learningRuns.Add(1)
	mLearningRuns.Inc()
	if s.convergedEpoch >= 0 {
		learningConverged.Add(1)
		learningLastConverge.Store(int64(s.convergedEpoch))
		mLearningConverged.Inc()
		mLearningLastConverge.Set(float64(s.convergedEpoch))
	}
}

// Process-wide learning health, aggregated across every finalized sampler in
// this process. Workers expose these through their registries so cluster
// heartbeats federate fleet-wide learning progress.
var (
	learningRuns         atomic.Int64
	learningConverged    atomic.Int64
	learningLastConverge atomic.Int64
)

// LearningStats reports how many sampled runs this process has finalized, how
// many of them converged, and the converge epoch of the most recent
// convergence (0 if none yet).
func LearningStats() (runs, converged, lastConvergeEpoch int64) {
	return learningRuns.Load(), learningConverged.Load(), learningLastConverge.Load()
}

// RunCurve is one sampled run inside a CurveSet: which policy and workload it
// belongs to, the per-epoch curve, and the condensed summary.
type RunCurve struct {
	Policy   string       `json:"policy"`
	Workload string       `json:"workload"`
	Seed     int64        `json:"seed,omitempty"`
	Repeat   int          `json:"repeat,omitempty"`
	Points   []CurvePoint `json:"points"`
	Summary  CurveSummary `json:"summary"`
}

// CurveSet collects the learning curves of every sampled run in a job. It is
// safe for concurrent Add (cells run on a worker pool); iteration snapshots
// under the lock.
type CurveSet struct {
	mu     sync.Mutex
	curves []RunCurve
}

// NewCurveSet returns an empty set.
func NewCurveSet() *CurveSet { return &CurveSet{} }

// Add appends one finished run's curve.
func (cs *CurveSet) Add(c RunCurve) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.curves = append(cs.curves, c)
	cs.mu.Unlock()
}

// Curves returns a snapshot sorted by (policy, workload, seed, repeat) so the
// serialized order is independent of cell completion order.
func (cs *CurveSet) Curves() []RunCurve {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	out := append([]RunCurve(nil), cs.curves...)
	cs.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return out[i].Repeat < out[j].Repeat
	})
	return out
}

// Len returns how many runs have been recorded.
func (cs *CurveSet) Len() int {
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.curves)
}

// WriteJSONL streams the set as one RunCurve JSON object per line — the
// archive format of the durable learning store and the ?format=jsonl wire
// format of GET /v1/jobs/{id}/learning.
func (cs *CurveSet) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range cs.Curves() {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// curveCSVHeader is the per-epoch learning-curve CSV column order
// (thermsim -learning-csv).
var curveCSVHeader = []string{
	"policy", "workload", "seed", "repeat",
	"epoch", "time_s", "reward", "abs_td", "alpha", "coverage", "stability", "damage",
}

// WriteCSV renders every run's per-epoch points as one flat CSV, one row per
// (policy, workload, seed, repeat, epoch). Floats use Go's shortest exact
// representation and runs are sorted by their coordinates, so equal inputs
// produce byte-equal output.
func (cs *CurveSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(curveCSVHeader); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range cs.Curves() {
		for _, p := range c.Points {
			rec := []string{
				c.Policy, c.Workload,
				strconv.FormatInt(c.Seed, 10), strconv.Itoa(c.Repeat),
				strconv.Itoa(p.Epoch), ff(p.TimeS), ff(p.Reward), ff(p.AbsTD),
				ff(p.Alpha), ff(p.Coverage), ff(p.Stability), ff(p.Damage),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// MarshalJSONL renders WriteJSONL to a byte slice.
func (cs *CurveSet) MarshalJSONL() ([]byte, error) {
	var buf bytes.Buffer
	if err := cs.WriteJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCurvesJSONL parses a WriteJSONL archive back into a CurveSet.
func DecodeCurvesJSONL(data []byte) (*CurveSet, error) {
	cs := NewCurveSet()
	dec := json.NewDecoder(bytes.NewReader(data))
	for i := 0; ; i++ {
		var c RunCurve
		if err := dec.Decode(&c); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("rl: learning archive line %d: %w", i+1, err)
		}
		cs.curves = append(cs.curves, c)
	}
	return cs, nil
}
