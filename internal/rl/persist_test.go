package rl

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestQTableJSONRoundTrip(t *testing.T) {
	q := NewQTable(3, 4)
	q.Set(0, 0, 1.5)
	q.Set(2, 3, -7.25)
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var got QTable
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != 3 || got.NumActions() != 4 {
		t.Fatalf("dimensions %dx%d", got.NumStates(), got.NumActions())
	}
	if got.Get(0, 0) != 1.5 || got.Get(2, 3) != -7.25 {
		t.Error("values lost in round trip")
	}
}

func TestQTableUnmarshalValidation(t *testing.T) {
	cases := []string{
		`{"states":0,"actions":4,"q":[]}`,
		`{"states":2,"actions":2,"q":[1,2,3]}`, // wrong length
		`{"states":-1,"actions":2,"q":[]}`,
		`not json`,
	}
	for _, c := range cases {
		var q QTable
		if err := json.Unmarshal([]byte(c), &q); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultAgentConfig(4, 5)
	a := NewAgent(cfg)
	// Build some state: learn, pass the snapshot point, learn more.
	for i := 0; i < 12; i++ {
		a.Observe(i%4, i%5, float64(i)/3-1, (i+1)%4)
		a.EndEpoch()
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewAgent(cfg)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.Alpha() != a.Alpha() {
		t.Errorf("alpha %g != %g", b.Alpha(), a.Alpha())
	}
	if b.Epochs() != a.Epochs() {
		t.Errorf("epochs %d != %d", b.Epochs(), a.Epochs())
	}
	for s := 0; s < 4; s++ {
		for act := 0; act < 5; act++ {
			if b.Q().Get(s, act) != a.Q().Get(s, act) {
				t.Fatalf("Q(%d,%d) mismatch", s, act)
			}
		}
	}
	// The restored snapshot must behave identically.
	a.RestoreSnapshot()
	b.RestoreSnapshot()
	for s := 0; s < 4; s++ {
		for act := 0; act < 5; act++ {
			if b.Q().Get(s, act) != a.Q().Get(s, act) {
				t.Fatalf("post-restore Q(%d,%d) mismatch", s, act)
			}
		}
	}
}

func TestAgentLoadValidation(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(2, 2))
	cases := []string{
		`{}`, // missing table
		`{"alpha":0.5,"q":{"states":3,"actions":3,"q":[0,0,0,0,0,0,0,0,0]}}`,             // wrong dims
		`{"alpha":2,"q":{"states":2,"actions":2,"q":[0,0,0,0]}}`,                         // bad alpha
		`{"alpha":0.5,"snapshot_taken":true,"q":{"states":2,"actions":2,"q":[0,0,0,0]}}`, // missing snapshot
		`garbage`,
	}
	for _, c := range cases {
		if err := a.Load(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	// A failed load must not corrupt the agent.
	a.Observe(0, 0, 1, 1)
	v := a.Q().Get(0, 0)
	_ = a.Load(strings.NewReader(`{}`))
	if a.Q().Get(0, 0) != v {
		t.Error("failed load corrupted the agent")
	}
}

func TestSaveKindRoundTrip(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(3, 4))
	for i := 0; i < 5; i++ {
		a.Observe(i%3, i%4, 0.5, (i+1)%3)
		a.EndEpoch()
	}
	var buf bytes.Buffer
	if err := a.SaveKind(&buf, "releta"); err != nil {
		t.Fatal(err)
	}
	sa, err := DecodeAgent(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Kind != "releta" {
		t.Errorf("kind = %q, want releta", sa.Kind)
	}

	// The historical untagged format decodes with an empty kind, and Save
	// keeps writing it (no policy_kind key at all).
	buf.Reset()
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "policy_kind") {
		t.Error("untagged Save leaked a policy_kind key")
	}
	sa, err = DecodeAgent(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Kind != "" {
		t.Errorf("kind = %q, want empty for the historical format", sa.Kind)
	}
}

func TestSavedAgentValidateFor(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(3, 4))
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sa, err := DecodeAgent(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.ValidateFor(3, 4); err != nil {
		t.Fatalf("matching dimensions rejected: %v", err)
	}
	err = sa.ValidateFor(12, 12)
	var de *DimensionError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DimensionError", err)
	}
	if de.GotStates != 3 || de.GotActions != 4 || de.WantStates != 12 || de.WantActions != 12 {
		t.Errorf("DimensionError fields = %+v", de)
	}
}
