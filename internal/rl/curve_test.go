package rl

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// stepEpoch drives one epoch with a fixed (state, action) visit so tests
// control the greedy policy purely through the Q-table contents.
func stepEpoch(s *LearningSampler, epoch int, q *QTable) {
	s.EndEpoch(epoch, float64(epoch), 0.5, 0.9, epoch%q.NumStates(), 0, q)
}

// TestLearningConvergesAtFirstEpoch: a greedy policy that never moves from
// the very first observation converges at epoch 1 (the earliest possible
// verdict) exactly when the stability window fills — one epoch earlier it is
// still undecided.
func TestLearningConvergesAtFirstEpoch(t *testing.T) {
	q := NewQTable(3, 2)
	q.Set(0, 1, 1) // fixed greedy: [1 0 0]

	s := NewLearningSampler(0)
	for epoch := 1; epoch <= DefaultConvergenceWindow-1; epoch++ {
		stepEpoch(s, epoch, q)
		if got := s.ConvergedEpoch(); got != -1 {
			t.Fatalf("converged at %d after %d stable epochs, want undecided (-1)", got, epoch)
		}
	}
	stepEpoch(s, DefaultConvergenceWindow, q)
	if got := s.ConvergedEpoch(); got != 1 {
		t.Fatalf("ConvergedEpoch() = %d, want 1", got)
	}
	if sum := s.Summary(); sum.ConvergeEpoch != 1 || sum.Epochs != DefaultConvergenceWindow {
		t.Fatalf("summary %+v, want converge_epoch 1 over %d epochs", sum, DefaultConvergenceWindow)
	}
}

// TestLearningNeverConverges: a greedy policy perturbed every epoch keeps the
// detector from ever firing, and the -1 verdict survives into the summary.
func TestLearningNeverConverges(t *testing.T) {
	q := NewQTable(3, 2)
	s := NewLearningSampler(0)
	for epoch := 1; epoch <= 6*DefaultConvergenceWindow; epoch++ {
		// Alternate state 0's argmax between action 0 and action 1.
		q.Set(0, 0, float64(1+epoch%2))
		q.Set(0, 1, float64(2-epoch%2))
		stepEpoch(s, epoch, q)
	}
	if got := s.ConvergedEpoch(); got != -1 {
		t.Fatalf("ConvergedEpoch() = %d, want -1 (never converged)", got)
	}
	if sum := s.Summary(); sum.ConvergeEpoch != -1 {
		t.Fatalf("summary converge_epoch = %d, want -1", sum.ConvergeEpoch)
	}
}

// TestLearningConvergesAfterLateChange: a greedy flip mid-run resets the
// stability window, so the verdict is the first epoch of the final stable
// stretch, not of the earlier false start.
func TestLearningConvergesAfterLateChange(t *testing.T) {
	q := NewQTable(3, 2)
	s := NewLearningSampler(0)
	flipAt := 5
	for epoch := 1; epoch < flipAt; epoch++ {
		stepEpoch(s, epoch, q)
	}
	q.Set(0, 1, 1) // greedy of state 0 flips from 0 to 1
	for epoch := flipAt; epoch < flipAt+DefaultConvergenceWindow; epoch++ {
		stepEpoch(s, epoch, q)
	}
	if got := s.ConvergedEpoch(); got != flipAt {
		t.Fatalf("ConvergedEpoch() = %d, want %d", got, flipAt)
	}
}

// TestLearningCurvePointContents pins what EndEpoch records: mean |TD| over
// the epoch's updates, pending damage folded into exactly one point, NaN
// rewards recorded as zero and excluded from the mean.
func TestLearningCurvePointContents(t *testing.T) {
	q := NewQTable(2, 2)
	s := NewLearningSampler(0)
	s.ObserveTD(0.5)
	s.ObserveTD(-1.5)
	s.ObserveTD(math.NaN()) // ignored
	s.ObserveCycleDamage(0, 1, 2.0)
	s.ObserveCycleDamage(1, 1, 1.0)
	s.EndEpoch(1, 10, math.NaN(), 0.87, 0, 1, q)
	s.EndEpoch(2, 20, 0.25, 0.76, 1, 0, q)

	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].AbsTD != 1.0 {
		t.Errorf("mean |TD| = %g, want 1", pts[0].AbsTD)
	}
	if pts[0].Damage != 3.0 || pts[1].Damage != 0 {
		t.Errorf("damage attribution: %g then %g, want 3 then 0", pts[0].Damage, pts[1].Damage)
	}
	if pts[0].Reward != 0 {
		t.Errorf("NaN reward recorded as %g, want 0", pts[0].Reward)
	}
	sum := s.Summary()
	if sum.MeanReward != 0.25 {
		t.Errorf("mean reward %g, want 0.25 (NaN epoch excluded)", sum.MeanReward)
	}
	if want := []float64{2, 1}; !reflect.DeepEqual(sum.CoreDamage, want) {
		t.Errorf("core damage %v, want %v", sum.CoreDamage, want)
	}
	if want := []float64{2.0 / 3.0, 1.0 / 3.0}; !reflect.DeepEqual(sum.CoreDamageShare, want) {
		t.Errorf("core damage share %v, want %v", sum.CoreDamageShare, want)
	}
	if want := []float64{0, 3}; !reflect.DeepEqual(sum.ActionDamage, want) {
		t.Errorf("action damage %v, want %v", sum.ActionDamage, want)
	}
}

// TestLearningSamplerDisabledZeroAlloc pins the nil-receiver contract: every
// sampler method on a disabled (nil) sampler is allocation-free, so policies
// can call them unconditionally on hot paths.
func TestLearningSamplerDisabledZeroAlloc(t *testing.T) {
	var s *LearningSampler
	q := NewQTable(4, 3)
	allocs := testing.AllocsPerRun(1000, func() {
		s.ObserveTD(0.5)
		s.ObserveCycleDamage(1, 2, 0.1)
		s.EndEpoch(1, 1.0, 0.5, 0.9, 0, 0, q)
		s.Finalize()
		_ = s.ConvergedEpoch()
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler allocated %.1f per run, want 0", allocs)
	}
}

// TestLearningAgentObserveZeroAllocWithoutSampler pins the agent's hot path:
// Observe with no sampler attached stays allocation-free, so enabling the
// sampler machinery in the build costs nothing when sampling is off.
func TestLearningAgentObserveZeroAllocWithoutSampler(t *testing.T) {
	a := NewAgent(DefaultAgentConfig(4, 3))
	allocs := testing.AllocsPerRun(1000, func() {
		a.Observe(0, 1, 0.5, 2)
		a.EndEpoch()
	})
	if allocs != 0 {
		t.Fatalf("Observe without sampler allocated %.1f per run, want 0", allocs)
	}
}

// TestLearningAgentFeedsSampler: an attached sampler sees one TD error per
// Observe, without perturbing the agent's RNG stream (two agents with the
// same seed, one sampled and one not, select identical actions).
func TestLearningAgentFeedsSampler(t *testing.T) {
	sampled := NewAgent(DefaultAgentConfig(4, 3))
	plain := NewAgent(DefaultAgentConfig(4, 3))
	s := NewLearningSampler(0)
	sampled.AttachSampler(s)
	for i := 0; i < 50; i++ {
		st := i % 4
		as, ap := sampled.SelectAction(st), plain.SelectAction(st)
		if as != ap {
			t.Fatalf("epoch %d: sampled agent selected %d, plain %d — sampling perturbed the RNG", i, as, ap)
		}
		sampled.Observe(st, as, 0.1, (st+1)%4)
		plain.Observe(st, ap, 0.1, (st+1)%4)
		sampled.EndEpoch()
		plain.EndEpoch()
	}
	s.EndEpoch(1, 1, 0.1, sampled.Alpha(), 0, 0, sampled.Q())
	if pts := s.Points(); len(pts) != 1 || pts[0].AbsTD <= 0 {
		t.Fatalf("sampler saw no TD errors: %+v", pts)
	}
}

// TestCurveSetJSONLRoundTrip: the durable archive format reproduces the set
// exactly (shortest-form float64 JSON round-trips), in coordinate order.
func TestCurveSetJSONLRoundTrip(t *testing.T) {
	cs := NewCurveSet()
	cs.Add(RunCurve{Policy: "releta", Workload: "mpegdec", Seed: 2,
		Points:  []CurvePoint{{Epoch: 1, TimeS: 0.5, Reward: 1.0 / 3.0, AbsTD: 0.125, Alpha: 0.87}},
		Summary: CurveSummary{Epochs: 1, ConvergeEpoch: -1}})
	cs.Add(RunCurve{Policy: "proposed", Workload: "mpegdec", Seed: 1,
		Points:  []CurvePoint{{Epoch: 1}, {Epoch: 2, Damage: 0.25}},
		Summary: CurveSummary{Epochs: 2, ConvergeEpoch: 1, CoreDamage: []float64{0.25}, CoreDamageShare: []float64{1}}})

	data, err := cs.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCurvesJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	want := cs.Curves()
	if !reflect.DeepEqual(got.Curves(), want) {
		t.Fatalf("round trip changed the set:\n%+v\n%+v", got.Curves(), want)
	}
	if want[0].Policy != "proposed" {
		t.Fatalf("curves not sorted by coordinates: first is %q", want[0].Policy)
	}
	if _, err := DecodeCurvesJSONL([]byte("{not json}\n")); err == nil {
		t.Fatal("corrupt archive accepted")
	}
}

// TestCurveSetCSV: the -learning-csv surface is deterministic (byte-equal on
// re-render) and flattens every run's points under its coordinates.
func TestCurveSetCSV(t *testing.T) {
	cs := NewCurveSet()
	cs.Add(RunCurve{Policy: "proposed", Workload: "mpegdec", Seed: 7, Repeat: 1,
		Points: []CurvePoint{{Epoch: 1, TimeS: 1, Reward: 0.5}, {Epoch: 2, TimeS: 2, AbsTD: 0.25}}})
	var a, b bytes.Buffer
	if err := cs.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := cs.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV rendering is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 points:\n%s", len(lines), a.String())
	}
	if !strings.HasPrefix(lines[0], "policy,workload,seed,repeat,epoch,") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "proposed,mpegdec,7,1,1,") {
		t.Fatalf("unexpected first row %q", lines[1])
	}
}

// TestLearningFinalizeStats: Finalize feeds the process-wide learning-health
// counters exactly once per sampler, and convergence bumps the converged
// count alongside.
func TestLearningFinalizeStats(t *testing.T) {
	runs0, conv0, _ := LearningStats()

	q := NewQTable(2, 2)
	s := NewLearningSampler(2)
	stepEpoch(s, 1, q)
	stepEpoch(s, 2, q)
	s.Finalize()
	s.Finalize() // idempotent

	runs1, conv1, last1 := LearningStats()
	if runs1 != runs0+1 || conv1 != conv0+1 {
		t.Fatalf("stats moved (%d,%d) -> (%d,%d), want +1/+1", runs0, conv0, runs1, conv1)
	}
	if last1 != 1 {
		t.Fatalf("last converge epoch %d, want 1", last1)
	}

	n := NewLearningSampler(2)
	n.Finalize() // sampled nothing, never converged
	runs2, conv2, _ := LearningStats()
	if runs2 != runs1+1 || conv2 != conv1 {
		t.Fatalf("unconverged finalize moved stats (%d,%d) -> (%d,%d), want runs+1 only", runs1, conv1, runs2, conv2)
	}
}
