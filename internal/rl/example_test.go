package rl_test

import (
	"fmt"

	"repro/internal/rl"
)

// Drive an agent through a trivial environment and watch it converge.
func ExampleAgent() {
	cfg := rl.DefaultAgentConfig(2, 2)
	agent := rl.NewAgent(cfg)
	fmt.Println("start:", agent.Phase())

	// Environment: action 1 always pays, action 0 never does.
	state := 0
	for !agent.Converged() {
		action := agent.SelectAction(state)
		reward := -1.0
		if action == 1 {
			reward = 1.0
		}
		next := (state + 1) % 2
		agent.Observe(state, action, reward, next)
		agent.EndEpoch()
		state = next
	}
	fmt.Println("end:", agent.Phase())
	fmt.Println("learned best action:", agent.Q().BestAction(0), agent.Q().BestAction(1))
	// Output:
	// start: exploration
	// end: exploitation
	// learned best action: 1 1
}

// The dual Q-table of Section 5.4: snapshot at the end of exploration,
// restore on an intra-application variation, re-learn on an
// inter-application one.
func ExampleAgent_RestoreSnapshot() {
	agent := rl.NewAgent(rl.DefaultAgentConfig(2, 2))
	agent.Observe(0, 1, 5, 1)
	for agent.Phase() == rl.Exploration {
		agent.EndEpoch() // snapshot captured when exploration ends
	}
	agent.Observe(0, 1, -100, 1) // later drift
	agent.RestoreSnapshot()      // intra-application variation
	fmt.Printf("restored Q(0,1) > 0: %v\n", agent.Q().Get(0, 1) > 0)
	agent.Relearn() // inter-application variation
	fmt.Printf("after relearn Q(0,1) = %g, alpha = %g\n", agent.Q().Get(0, 1), agent.Alpha())
	// Output:
	// restored Q(0,1) > 0: true
	// after relearn Q(0,1) = 0, alpha = 1
}
