package rl

import (
	"encoding/json"
	"fmt"
	"io"
)

// tableJSON is the serialized form of a QTable.
type tableJSON struct {
	States  int       `json:"states"`
	Actions int       `json:"actions"`
	Q       []float64 `json:"q"`
}

// MarshalJSON serializes the table with its dimensions.
func (t *QTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{States: t.numStates, Actions: t.numActions, Q: t.q})
}

// UnmarshalJSON restores a table; dimensions come from the payload.
func (t *QTable) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("rl: unmarshal q-table: %w", err)
	}
	if tj.States <= 0 || tj.Actions <= 0 {
		return fmt.Errorf("rl: unmarshal q-table: invalid dimensions %dx%d", tj.States, tj.Actions)
	}
	if len(tj.Q) != tj.States*tj.Actions {
		return fmt.Errorf("rl: unmarshal q-table: %d values for %dx%d table", len(tj.Q), tj.States, tj.Actions)
	}
	t.numStates = tj.States
	t.numActions = tj.Actions
	t.q = tj.Q
	return nil
}

// agentJSON is the serialized learning state of an Agent. Kind is the
// policy-kind tag ("" for the historical proposed-controller format), letting
// checkpoint consumers route a payload to the learner that wrote it.
type agentJSON struct {
	Kind      string  `json:"policy_kind,omitempty"`
	Alpha     float64 `json:"alpha"`
	Epochs    int     `json:"epochs"`
	SnapTaken bool    `json:"snapshot_taken"`
	Q         *QTable `json:"q"`
	Snapshot  *QTable `json:"snapshot,omitempty"`
}

// Save serializes the agent's learning state (live Q-table, exploration-end
// snapshot, learning rate, epoch count) as JSON, so a deployment can persist
// what it learned across restarts. The payload carries no policy-kind tag —
// the historical format, which decoders treat as the proposed controller;
// other learners persist through SaveKind.
func (a *Agent) Save(w io.Writer) error {
	return a.SaveKind(w, "")
}

// SaveKind is Save with an explicit policy-kind tag, so every registered
// learner's checkpoints are distinguishable in the checkpoint store. An empty
// kind writes the historical untagged format.
func (a *Agent) SaveKind(w io.Writer, kind string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(agentJSON{
		Kind:      kind,
		Alpha:     a.alpha,
		Epochs:    a.epochs,
		SnapTaken: a.snapTaken,
		Q:         a.q,
		Snapshot:  a.snap,
	})
}

// DimensionError reports a saved table whose state/action dimensions do not
// match the configuration requesting it. It is a typed error so warm-start
// plumbing can reject a mismatched checkpoint up front instead of adopting a
// wrong-shaped table (or failing deep inside controller construction).
type DimensionError struct {
	// GotStates x GotActions are the saved table's dimensions;
	// WantStates x WantActions the requesting configuration's.
	GotStates, GotActions   int
	WantStates, WantActions int
}

func (e *DimensionError) Error() string {
	return fmt.Sprintf("rl: saved table is %dx%d, requesting config wants %dx%d",
		e.GotStates, e.GotActions, e.WantStates, e.WantActions)
}

// SavedAgent is serialized agent state decoded without an Agent to load it
// into: what a checkpoint store or CLI needs to inspect dimensions and pick
// a warm-start table before any controller exists.
type SavedAgent struct {
	// Kind is the policy-kind tag the checkpoint was saved with ("" for the
	// historical proposed-controller format).
	Kind string
	// Alpha and Epochs are the saved learning-rate state.
	Alpha  float64
	Epochs int
	// Q is the live table; Snapshot the exploration-end snapshot (nil when
	// the save happened before exploration ended).
	Q        *QTable
	Snapshot *QTable
}

// ValidateFor rejects the saved state when its table dimensions do not match
// a requesting configuration's state/action space, returning a typed
// *DimensionError so callers can surface the mismatch before any adoption.
func (sa *SavedAgent) ValidateFor(numStates, numActions int) error {
	if sa.Q.numStates != numStates || sa.Q.numActions != numActions {
		return &DimensionError{
			GotStates: sa.Q.numStates, GotActions: sa.Q.numActions,
			WantStates: numStates, WantActions: numActions,
		}
	}
	return nil
}

// DecodeAgent parses agent state previously written by Agent.Save,
// validating dimensions and invariants the same way Load does.
func DecodeAgent(r io.Reader) (*SavedAgent, error) {
	var aj agentJSON
	if err := json.NewDecoder(r).Decode(&aj); err != nil {
		return nil, fmt.Errorf("rl: decode agent: %w", err)
	}
	if aj.Q == nil {
		return nil, fmt.Errorf("rl: decode agent: missing q-table")
	}
	if aj.Alpha < 0 || aj.Alpha > 1 {
		return nil, fmt.Errorf("rl: decode agent: alpha %g out of [0,1]", aj.Alpha)
	}
	if aj.SnapTaken {
		if aj.Snapshot == nil {
			return nil, fmt.Errorf("rl: decode agent: snapshot flagged but missing")
		}
		if aj.Snapshot.numStates != aj.Q.numStates || aj.Snapshot.numActions != aj.Q.numActions {
			return nil, fmt.Errorf("rl: decode agent: snapshot dimension mismatch")
		}
	}
	sa := &SavedAgent{Kind: aj.Kind, Alpha: aj.Alpha, Epochs: aj.Epochs, Q: aj.Q}
	if aj.SnapTaken {
		sa.Snapshot = aj.Snapshot
	}
	return sa, nil
}

// WarmTable returns the table a warm start should adopt: the
// exploration-end snapshot when one was captured (the paper's post-
// exploration policy, the asset intra-application restores depend on),
// otherwise the live table.
func (sa *SavedAgent) WarmTable() *QTable {
	if sa.Snapshot != nil {
		return sa.Snapshot
	}
	return sa.Q
}

// Load restores learning state previously written by Save. The serialized
// Q-table dimensions must match the agent's configuration.
func (a *Agent) Load(r io.Reader) error {
	var aj agentJSON
	if err := json.NewDecoder(r).Decode(&aj); err != nil {
		return fmt.Errorf("rl: load agent: %w", err)
	}
	if aj.Q == nil {
		return fmt.Errorf("rl: load agent: missing q-table")
	}
	if aj.Q.numStates != a.cfg.NumStates || aj.Q.numActions != a.cfg.NumActions {
		return fmt.Errorf("rl: load agent: table is %dx%d, agent configured for %dx%d",
			aj.Q.numStates, aj.Q.numActions, a.cfg.NumStates, a.cfg.NumActions)
	}
	if aj.SnapTaken {
		if aj.Snapshot == nil {
			return fmt.Errorf("rl: load agent: snapshot flagged but missing")
		}
		if aj.Snapshot.numStates != a.cfg.NumStates || aj.Snapshot.numActions != a.cfg.NumActions {
			return fmt.Errorf("rl: load agent: snapshot dimension mismatch")
		}
	}
	if aj.Alpha < 0 || aj.Alpha > 1 {
		return fmt.Errorf("rl: load agent: alpha %g out of [0,1]", aj.Alpha)
	}
	a.q = aj.Q
	a.snap = aj.Snapshot
	a.snapTaken = aj.SnapTaken
	a.alpha = aj.Alpha
	a.epochs = aj.Epochs
	return nil
}
