package rl

import (
	"sync"

	"repro/internal/telemetry"
)

// Package-wide learning metrics, registered once in the default telemetry
// registry. Agents run concurrently inside the job pool, so every metric is
// a process-wide aggregate; the alpha gauge tracks the most recent epoch of
// whichever agent advanced last (a live convergence indicator, not a
// per-agent value).
var (
	metricsOnce     sync.Once
	mEpochs         *telemetry.Counter
	mActionsExplore *telemetry.Counter
	mActionsGreedy  *telemetry.Counter
	mQResets        *telemetry.Counter
	mRestores       *telemetry.Counter
	mAdoptions      *telemetry.Counter
	mAlpha          *telemetry.Gauge
	mReward         *telemetry.Histogram

	// Learning-curve health (finalized samplers; see LearningStats).
	mLearningRuns         *telemetry.Counter
	mLearningConverged    *telemetry.Counter
	mLearningLastConverge *telemetry.Gauge
)

// rewardBuckets spans the Eq. 8 range: unsafe-state penalties reach
// -(stressBins * agingBins) while safe-state rewards stay within ~[0, 1.2].
var rewardBuckets = []float64{-12, -8, -4, -2, -1, -0.5, -0.25, 0, 0.25, 0.5, 0.75, 1, 1.5}

func initMetrics() {
	metricsOnce.Do(func() {
		reg := telemetry.Default()
		mEpochs = reg.Counter("rl_epochs_total", "Decision epochs processed across all agents.")
		mActionsExplore = reg.Counter("rl_actions_total", "Actions selected, by selection mode.", telemetry.L("mode", "explore"))
		mActionsGreedy = reg.Counter("rl_actions_total", "Actions selected, by selection mode.", telemetry.L("mode", "greedy"))
		mQResets = reg.Counter("rl_q_resets_total", "Q-table resets on inter-application variations (Relearn).")
		mRestores = reg.Counter("rl_snapshot_restores_total", "Exploration-end snapshot restores on intra-application variations.")
		mAdoptions = reg.Counter("rl_adoptions_total", "Policies adopted from the signature library.")
		mAlpha = reg.Gauge("rl_alpha", "Learning rate after the most recent epoch of any agent.")
		mReward = reg.Histogram("rl_reward", "Distribution of Eq. 8 rewards granted.", rewardBuckets)
		mLearningRuns = reg.Counter("rl_learning_runs_total", "Sampled learning runs finalized.")
		mLearningConverged = reg.Counter("rl_learning_converged_total", "Sampled learning runs whose greedy policy converged.")
		mLearningLastConverge = reg.Gauge("rl_learning_last_converge_epoch", "Converge epoch of the most recently converged sampled run.")
	})
}
