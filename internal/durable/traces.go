package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// ErrNoTrace is returned when a job has no archived trace.
var ErrNoTrace = errors.New("durable: no archived trace")

// DefaultTraceKeep bounds how many archived traces survive pruning when the
// caller passes a non-positive keep count.
const DefaultTraceKeep = 64

// traceJobRE guards archive file names against path traversal; job IDs are
// "job-%06d" but recovered journals may carry arbitrary strings.
var traceJobRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// TraceStore archives the span traces of finished jobs as JSONL files, one
// per job, so a trace outlives its job's in-memory eviction. The store prunes
// itself to the newest keep archives (job IDs sort chronologically), keeping
// disk usage bounded however long the server runs.
type TraceStore struct {
	mu   sync.Mutex
	dir  string
	keep int
}

// OpenTraces opens (creating if needed) a trace archive under dir, retaining
// the newest keep traces (DefaultTraceKeep when keep <= 0).
func OpenTraces(dir string, keep int) (*TraceStore, error) {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open traces: %w", err)
	}
	return &TraceStore{dir: dir, keep: keep}, nil
}

func (ts *TraceStore) path(job string) string {
	return filepath.Join(ts.dir, "trace-"+job+".jsonl")
}

// Save archives the spans of one job atomically (write-temp + rename) and
// prunes the oldest archives past the retention bound.
func (ts *TraceStore) Save(job string, spans []telemetry.Span) error {
	if !traceJobRE.MatchString(job) {
		return fmt.Errorf("durable: bad trace job name %q", job)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tmp := ts.path(job) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: save trace: %w", err)
	}
	if err := telemetry.WriteSpansJSONL(f, spans); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: save trace %s: %w", job, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: save trace %s: %w", job, err)
	}
	if err := os.Rename(tmp, ts.path(job)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: save trace %s: %w", job, err)
	}
	ts.pruneLocked()
	return nil
}

// Load reads back one job's archived spans (ErrNoTrace when absent).
func (ts *TraceStore) Load(job string) ([]telemetry.Span, error) {
	if !traceJobRE.MatchString(job) {
		return nil, ErrNoTrace
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	f, err := os.Open(ts.path(job))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoTrace
		}
		return nil, fmt.Errorf("durable: load trace %s: %w", job, err)
	}
	defer f.Close()
	return telemetry.DecodeSpansJSONL(f)
}

// Delete removes one job's archive (idempotent).
func (ts *TraceStore) Delete(job string) error {
	if !traceJobRE.MatchString(job) {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if err := os.Remove(ts.path(job)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: delete trace %s: %w", job, err)
	}
	return nil
}

// List returns the jobs with archived traces, oldest first.
func (ts *TraceStore) List() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.listLocked()
}

func (ts *TraceStore) listLocked() []string {
	entries, err := os.ReadDir(ts.dir)
	if err != nil {
		return nil
	}
	var jobs []string
	for _, e := range entries {
		name := e.Name()
		job, ok := strings.CutPrefix(name, "trace-")
		if !ok {
			continue
		}
		job, ok = strings.CutSuffix(job, ".jsonl")
		if !ok {
			continue
		}
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	return jobs
}

// pruneLocked drops the oldest archives beyond the retention bound. Job IDs
// are zero-padded sequence numbers, so lexicographic order is age order.
func (ts *TraceStore) pruneLocked() {
	jobs := ts.listLocked()
	for len(jobs) > ts.keep {
		os.Remove(ts.path(jobs[0]))
		jobs = jobs[1:]
	}
}
