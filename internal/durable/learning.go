package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoLearning is returned when a job has no archived learning curves.
var ErrNoLearning = errors.New("durable: no archived learning curves")

// DefaultLearningKeep bounds how many archived learning-curve sets survive
// pruning when the caller passes a non-positive keep count.
const DefaultLearningKeep = 64

// LearningStore archives the learning curves of finished jobs as JSONL files
// (one rl.RunCurve object per line), one file per job, next to the trace
// store — so a job's learning trajectory outlives its in-memory eviction.
// Like the trace store it prunes itself to the newest keep archives.
//
// The store treats the payload as opaque bytes: serialization lives with the
// curve types in internal/rl, keeping this package free of an rl dependency.
type LearningStore struct {
	mu   sync.Mutex
	dir  string
	keep int
}

// OpenLearning opens (creating if needed) a learning-curve archive under dir,
// retaining the newest keep archives (DefaultLearningKeep when keep <= 0).
func OpenLearning(dir string, keep int) (*LearningStore, error) {
	if keep <= 0 {
		keep = DefaultLearningKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open learning archive: %w", err)
	}
	return &LearningStore{dir: dir, keep: keep}, nil
}

func (ls *LearningStore) path(job string) string {
	return filepath.Join(ls.dir, "learning-"+job+".jsonl")
}

// Save archives one job's serialized learning curves atomically (write-temp +
// rename) and prunes the oldest archives past the retention bound.
func (ls *LearningStore) Save(job string, jsonl []byte) error {
	if !traceJobRE.MatchString(job) {
		return fmt.Errorf("durable: bad learning job name %q", job)
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	tmp := ls.path(job) + ".tmp"
	if err := os.WriteFile(tmp, jsonl, 0o644); err != nil {
		return fmt.Errorf("durable: save learning %s: %w", job, err)
	}
	if err := os.Rename(tmp, ls.path(job)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: save learning %s: %w", job, err)
	}
	ls.pruneLocked()
	return nil
}

// Load reads back one job's archived curves (ErrNoLearning when absent).
func (ls *LearningStore) Load(job string) ([]byte, error) {
	if !traceJobRE.MatchString(job) {
		return nil, ErrNoLearning
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	data, err := os.ReadFile(ls.path(job))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoLearning
		}
		return nil, fmt.Errorf("durable: load learning %s: %w", job, err)
	}
	return data, nil
}

// Delete removes one job's archive (idempotent).
func (ls *LearningStore) Delete(job string) error {
	if !traceJobRE.MatchString(job) {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := os.Remove(ls.path(job)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: delete learning %s: %w", job, err)
	}
	return nil
}

// List returns the jobs with archived learning curves, oldest first.
func (ls *LearningStore) List() []string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.listLocked()
}

func (ls *LearningStore) listLocked() []string {
	entries, err := os.ReadDir(ls.dir)
	if err != nil {
		return nil
	}
	var jobs []string
	for _, e := range entries {
		name := e.Name()
		job, ok := strings.CutPrefix(name, "learning-")
		if !ok {
			continue
		}
		job, ok = strings.CutSuffix(job, ".jsonl")
		if !ok {
			continue
		}
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	return jobs
}

// pruneLocked drops the oldest archives beyond the retention bound (job IDs
// sort chronologically).
func (ls *LearningStore) pruneLocked() {
	jobs := ls.listLocked()
	for len(jobs) > ls.keep {
		os.Remove(ls.path(jobs[0]))
		jobs = jobs[1:]
	}
}
