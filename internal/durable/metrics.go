package durable

import (
	"sync"

	"repro/internal/telemetry"
)

// Persistence metrics, registered in the process-wide default registry so
// thermserved's /metrics exposes them next to the simulation and RL
// families.
var (
	metricsOnce sync.Once

	mWALRecords       *telemetry.Counter
	mWALBytes         *telemetry.Counter
	mWALFsync         *telemetry.Histogram
	mWALTornTails     *telemetry.Counter
	mSnapshots        *telemetry.Counter
	mSnapshotLoads    *telemetry.Counter
	mSnapshotBytes    *telemetry.Gauge
	mRecoveries       *telemetry.Counter
	mRecoveredRecords *telemetry.Counter
	mCheckpointWrites *telemetry.Counter
	mCheckpointReads  *telemetry.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		reg := telemetry.Default()
		mWALRecords = reg.Counter("durable_wal_records_total", "Records appended to the write-ahead log.")
		mWALBytes = reg.Counter("durable_wal_bytes_total", "Bytes (frames included) appended to the write-ahead log.")
		mWALFsync = reg.Histogram("durable_wal_fsync_seconds", "Latency of the fsync committing each WAL append.", telemetry.IOBuckets)
		mWALTornTails = reg.Counter("durable_wal_torn_tails_total", "Torn or corrupt WAL tails truncated on open.")
		mSnapshots = reg.Counter("durable_snapshots_total", "Snapshots written by WAL compaction.")
		mSnapshotLoads = reg.Counter("durable_snapshot_loads_total", "Snapshots loaded at journal open.")
		mSnapshotBytes = reg.Gauge("durable_snapshot_bytes", "Size of the most recently written snapshot.")
		mRecoveries = reg.Counter("durable_recoveries_total", "Journal opens (each replays snapshot + WAL).")
		mRecoveredRecords = reg.Counter("durable_recovered_records_total", "WAL records replayed across all journal opens.")
		mCheckpointWrites = reg.Counter("durable_checkpoint_writes_total", "Checkpoints stored.")
		mCheckpointReads = reg.Counter("durable_checkpoint_reads_total", "Checkpoints read back.")
	})
}
