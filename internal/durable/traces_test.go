package durable

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

func traceSpans(n int) []telemetry.Span {
	spans := make([]telemetry.Span, n)
	for i := range spans {
		spans[i] = telemetry.Span{
			ID: telemetry.SpanID(i + 1), Kind: telemetry.KindRun,
			Name: fmt.Sprintf("run %d", i), StartUS: int64(i * 100), DurUS: 50,
			Attrs: []telemetry.Attr{telemetry.Num("peak_c", 71.5)},
		}
	}
	return spans
}

func TestTraceStoreRoundTrip(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := traceSpans(3)
	if err := ts.Save("job-000001", want); err != nil {
		t.Fatal(err)
	}
	got, err := ts.Load("job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Name != want[i].Name || got[i].StartUS != want[i].StartUS {
			t.Errorf("span %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, num, ok := got[0].Attr("peak_c"); !ok || num != 71.5 {
		t.Errorf("attr lost in round trip: %v %v", num, ok)
	}
}

func TestTraceStoreMissing(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Load("job-000042"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("missing trace: %v, want ErrNoTrace", err)
	}
}

func TestTraceStoreDeleteIdempotent(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Save("job-000001", traceSpans(1)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Delete("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Delete("job-000001"); err != nil {
		t.Fatalf("second delete: %v", err)
	}
	if _, err := ts.Load("job-000001"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("after delete: %v, want ErrNoTrace", err)
	}
}

func TestTraceStorePrunesOldest(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := ts.Save(fmt.Sprintf("job-%06d", i), traceSpans(1)); err != nil {
			t.Fatal(err)
		}
	}
	got := ts.List()
	want := []string{"job-000003", "job-000004", "job-000005"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after prune: %v, want %v", got, want)
	}
	if _, err := ts.Load("job-000001"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("pruned trace still loadable: %v", err)
	}
}

func TestTraceStoreRejectsBadNames(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := ts.Save(job, traceSpans(1)); err == nil {
			t.Errorf("Save(%q) accepted", job)
		}
		if _, err := ts.Load(job); !errors.Is(err, ErrNoTrace) {
			t.Errorf("Load(%q): %v, want ErrNoTrace", job, err)
		}
		if err := ts.Delete(job); err != nil {
			t.Errorf("Delete(%q): %v, want nil no-op", job, err)
		}
	}
}

func TestTraceStoreDefaultKeep(t *testing.T) {
	ts, err := OpenTraces(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.keep != DefaultTraceKeep {
		t.Fatalf("keep = %d, want %d", ts.keep, DefaultTraceKeep)
	}
}
