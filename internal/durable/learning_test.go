package durable

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func TestLearningStoreRoundTrip(t *testing.T) {
	ls, err := OpenLearning(filepath.Join(t.TempDir(), "learning"), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"policy":"proposed","workload":"face_rec","points":[]}` + "\n")
	if err := ls.Save("job-000001", payload); err != nil {
		t.Fatal(err)
	}
	got, err := ls.Load("job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload changed: %q vs %q", got, payload)
	}

	if _, err := ls.Load("job-000099"); !errors.Is(err, ErrNoLearning) {
		t.Fatalf("missing job: %v, want ErrNoLearning", err)
	}
	if err := ls.Save("../escape", payload); err == nil {
		t.Fatal("path-traversal job name accepted")
	}
	if _, err := ls.Load("../escape"); !errors.Is(err, ErrNoLearning) {
		t.Fatalf("bad name load: %v, want ErrNoLearning", err)
	}

	if err := ls.Delete("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := ls.Delete("job-000001"); err != nil {
		t.Fatalf("second delete not idempotent: %v", err)
	}
	if _, err := ls.Load("job-000001"); !errors.Is(err, ErrNoLearning) {
		t.Fatalf("deleted job still loads: %v", err)
	}
}

func TestLearningStorePrunesOldest(t *testing.T) {
	ls, err := OpenLearning(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range []string{"job-000001", "job-000002", "job-000003"} {
		if err := ls.Save(job, []byte("{}\n")); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"job-000002", "job-000003"}
	if got := ls.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after prune: %v, want %v", got, want)
	}
	if _, err := ls.Load("job-000001"); !errors.Is(err, ErrNoLearning) {
		t.Fatalf("pruned job still loads: %v", err)
	}
}
