package durable

import (
	"encoding/json"
	"fmt"
	"time"
)

// Record kinds, one per journaled job-lifecycle transition.
const (
	// KindSubmit registers a job: id, spec, cell budget, submission time.
	KindSubmit = "submit"
	// KindCell commits one finished cell: index plus its row (or error).
	KindCell = "cell"
	// KindFinish commits a terminal transition (done/failed/cancelled).
	KindFinish = "finish"
	// KindCancel records a cancellation request, whatever the job's state
	// at that moment (a queued-but-never-started job journals exactly like
	// a running one; the terminal KindFinish follows separately).
	KindCancel = "cancel"
	// KindEvict drops a TTL-expired job from the durable state, so
	// compaction cannot resurrect it and the data dir stays bounded.
	KindEvict = "evict"
)

// Record is one job-lifecycle entry in the WAL. Only the fields relevant to
// its Kind are set.
type Record struct {
	Kind string `json:"kind"`
	Job  string `json:"job"`

	// Submit fields.
	Spec        json.RawMessage `json:"spec,omitempty"`
	TotalCells  int             `json:"total_cells,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at,omitzero"`

	// Cell fields. Cell is the index into the campaign's cell plan; Worker
	// names the cluster node that executed it ("" for in-process runs).
	Cell   int             `json:"cell,omitempty"`
	Row    json.RawMessage `json:"row,omitempty"`
	Err    string          `json:"err,omitempty"`
	Worker string          `json:"worker,omitempty"`

	// Finish fields.
	State      string    `json:"state,omitempty"`
	Error      string    `json:"error,omitempty"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	WallClockS float64   `json:"wall_clock_s,omitempty"`
}

// CellState is the journaled outcome of one cell. Worker records which
// cluster node committed it ("" for in-process execution).
type CellState struct {
	Row    json.RawMessage `json:"row,omitempty"`
	Err    string          `json:"err,omitempty"`
	Worker string          `json:"worker,omitempty"`
}

// JobState is the journal's materialized view of one job: everything needed
// to rebuild a finished job's result or to resume an interrupted one.
type JobState struct {
	ID          string          `json:"id"`
	Spec        json.RawMessage `json:"spec"`
	TotalCells  int             `json:"total_cells"`
	SubmittedAt time.Time       `json:"submitted_at"`

	// State is "pending" until a finish record lands; an interrupted job
	// therefore recovers as pending (with its finished cells in Cells) and
	// is re-enqueued by the service layer.
	State      string    `json:"state"`
	Error      string    `json:"error,omitempty"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	WallClockS float64   `json:"wall_clock_s,omitempty"`

	// CancelRequested survives a crash between the cancel request and the
	// pool's finalization, so recovery cancels instead of resuming.
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// Cells holds the committed per-cell outcomes, keyed by cell index.
	Cells map[int]CellState `json:"cells,omitempty"`
}

// UncommittedCells lists the cell indices with no committed outcome, in
// ascending order — exactly the set a resume (or a cluster reassignment
// after a coordinator restart) must re-feed to the workers.
func (js *JobState) UncommittedCells() []int {
	out := make([]int, 0, js.TotalCells)
	for i := 0; i < js.TotalCells; i++ {
		if _, ok := js.Cells[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Terminal reports whether the job reached a terminal state before the
// journal was last written.
func (js *JobState) Terminal() bool {
	switch js.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// State is the fold of a snapshot plus the WAL's records: the durable view
// of the whole job store.
type State struct {
	Jobs map[string]*JobState `json:"jobs"`
}

// NewState returns an empty state.
func NewState() *State { return &State{Jobs: make(map[string]*JobState)} }

// Apply folds one record into the state. Records for unknown jobs (a cell
// record outrunning a lost submit cannot happen with fsync-on-commit, but a
// hand-edited journal could produce one) are ignored rather than fatal, so
// one odd record never blocks recovery of everything else.
func (s *State) Apply(rec Record) {
	switch rec.Kind {
	case KindSubmit:
		s.Jobs[rec.Job] = &JobState{
			ID:          rec.Job,
			Spec:        rec.Spec,
			TotalCells:  rec.TotalCells,
			SubmittedAt: rec.SubmittedAt,
			State:       "pending",
		}
	case KindCell:
		js, ok := s.Jobs[rec.Job]
		if !ok {
			return
		}
		if js.Cells == nil {
			js.Cells = make(map[int]CellState)
		}
		js.Cells[rec.Cell] = CellState{Row: rec.Row, Err: rec.Err, Worker: rec.Worker}
	case KindFinish:
		js, ok := s.Jobs[rec.Job]
		if !ok {
			return
		}
		js.State = rec.State
		js.Error = rec.Error
		js.StartedAt = rec.StartedAt
		js.FinishedAt = rec.FinishedAt
		js.WallClockS = rec.WallClockS
	case KindCancel:
		if js, ok := s.Jobs[rec.Job]; ok {
			js.CancelRequested = true
		}
	case KindEvict:
		delete(s.Jobs, rec.Job)
	}
}

// Clone returns a deep copy, so recovery can consume the state while the
// journal keeps folding new records into its own.
func (s *State) Clone() *State {
	out := NewState()
	for id, js := range s.Jobs {
		cp := *js
		cp.Spec = append(json.RawMessage(nil), js.Spec...)
		if js.Cells != nil {
			cp.Cells = make(map[int]CellState, len(js.Cells))
			for i, c := range js.Cells {
				cp.Cells[i] = CellState{Row: append(json.RawMessage(nil), c.Row...), Err: c.Err, Worker: c.Worker}
			}
		}
		out.Jobs[id] = &cp
	}
	return out
}

// validateRecord rejects records the fold could not use.
func validateRecord(rec Record) error {
	if rec.Job == "" {
		return fmt.Errorf("durable: record %q missing job id", rec.Kind)
	}
	switch rec.Kind {
	case KindSubmit, KindCell, KindFinish, KindCancel, KindEvict:
		return nil
	default:
		return fmt.Errorf("durable: unknown record kind %q", rec.Kind)
	}
}
