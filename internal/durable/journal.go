package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Journal file names inside the data directory.
const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.db"
)

// DefaultCompactBytes is the WAL size past which CompactIfLarger compacts.
const DefaultCompactBytes = 4 << 20

// Options parameterizes a Journal. The zero value is the safe default:
// fsync on every commit.
type Options struct {
	// NoSync disables fsync-on-commit. Appends then only reach the OS page
	// cache; a machine crash can lose the tail (a process crash cannot).
	NoSync bool
}

// Journal is the durable job store: an fsync-on-commit WAL of lifecycle
// records plus a periodically compacted snapshot. It maintains the
// materialized fold of both, so compaction is just "serialize the fold,
// reset the WAL".
type Journal struct {
	mu        sync.Mutex
	dir       string
	wal       *WAL
	state     *State
	recovered *State // deep copy taken at open, for the service's recovery pass
	log       *slog.Logger
}

// OpenJournal opens (creating if needed) the journal in dir, loads the
// snapshot, replays the WAL on top of it and truncates any torn tail. The
// state as of the crash is available via Recovered.
func OpenJournal(dir string, opts Options) (*Journal, error) {
	initMetrics()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create journal dir: %w", err)
	}
	st := NewState()
	snapPath := filepath.Join(dir, snapshotFile)
	payload, err := readCheckedFile(snapPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(payload, st); err != nil {
			return nil, fmt.Errorf("durable: decode snapshot: %w", err)
		}
		mSnapshotLoads.Inc()
	case errors.Is(err, fs.ErrNotExist):
		// First boot: empty state.
	case errors.Is(err, ErrCorrupt):
		// A snapshot is only ever replaced atomically, so corruption means
		// external damage. Refuse to guess: the operator must intervene.
		return nil, fmt.Errorf("durable: snapshot unreadable (restore or remove %s): %w", snapPath, err)
	default:
		return nil, fmt.Errorf("durable: read snapshot: %w", err)
	}

	wal, payloads, err := OpenWAL(filepath.Join(dir, walFile), !opts.NoSync)
	if err != nil {
		return nil, err
	}
	for _, p := range payloads {
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			wal.Close()
			return nil, fmt.Errorf("durable: decode wal record: %w", err)
		}
		st.Apply(rec)
	}
	mRecoveries.Inc()
	mRecoveredRecords.Add(int64(len(payloads)))
	j := &Journal{
		dir:       dir,
		wal:       wal,
		state:     st,
		recovered: st.Clone(),
		log:       telemetry.Component("durable"),
	}
	j.log.Info("journal opened", "dir", dir,
		"jobs", len(st.Jobs), "wal_records", len(payloads), "wal_bytes", wal.Size())
	return j, nil
}

// Recovered returns the state replayed at open: what survived the last
// crash or shutdown. The caller owns the copy.
func (j *Journal) Recovered() *State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered.Clone()
}

// Append validates, serializes and commits one record, then folds it into
// the materialized state. With fsync-on-commit (the default) the record is
// on stable storage when Append returns.
func (j *Journal) Append(rec Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.wal.Append(payload); err != nil {
		return err
	}
	j.state.Apply(rec)
	return nil
}

// Compact atomically writes the materialized state as a snapshot and resets
// the WAL. Crash-ordering: the snapshot rename commits first, so a crash
// between the two steps only leaves redundant (idempotently re-applied)
// records in the WAL.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	start := time.Now()
	payload, err := json.Marshal(j.state)
	if err != nil {
		return fmt.Errorf("durable: encode snapshot: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(j.dir, snapshotFile), payload); err != nil {
		return err
	}
	if err := j.wal.Reset(); err != nil {
		return err
	}
	mSnapshots.Inc()
	mSnapshotBytes.Set(float64(len(payload) + checkedHeaderSize))
	j.log.Info("journal compacted", "jobs", len(j.state.Jobs),
		"snapshot_bytes", len(payload), "seconds", time.Since(start).Seconds())
	return nil
}

// CompactIfLarger compacts when the WAL exceeds threshold bytes
// (DefaultCompactBytes when threshold <= 0). Returns whether it compacted.
func (j *Journal) CompactIfLarger(threshold int64) (bool, error) {
	if threshold <= 0 {
		threshold = DefaultCompactBytes
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal.Size() < threshold {
		return false, nil
	}
	return true, j.compactLocked()
}

// WALSize returns the current WAL size in bytes.
func (j *Journal) WALSize() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wal.Size()
}

// Close flushes and closes the WAL. Callers wanting a clean restart (no
// replay) should Compact first.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wal.Close()
}
