package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var testSpec = json.RawMessage(`{"experiment":"suite","quick":true}`)

func submitRec(id string, cells int) Record {
	return Record{Kind: KindSubmit, Job: id, Spec: testSpec, TotalCells: cells,
		SubmittedAt: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func TestJournalFoldAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(rec Record) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(submitRec("job-000001", 3))
	must(Record{Kind: KindCell, Job: "job-000001", Cell: 0, Row: json.RawMessage(`{"v":1}`)})
	must(Record{Kind: KindCell, Job: "job-000001", Cell: 2, Row: json.RawMessage(`{"v":3}`)})
	must(submitRec("job-000002", 1))
	must(Record{Kind: KindCell, Job: "job-000002", Cell: 0, Row: json.RawMessage(`{"v":9}`)})
	must(Record{Kind: KindFinish, Job: "job-000002", State: "done",
		StartedAt: time.Now().UTC(), FinishedAt: time.Now().UTC(), WallClockS: 0.25})
	must(Record{Kind: KindCancel, Job: "job-000001"})
	j.Close()

	j2, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Recovered()
	if len(st.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(st.Jobs))
	}
	j1 := st.Jobs["job-000001"]
	if j1.State != "pending" || !j1.CancelRequested {
		t.Errorf("job 1 recovered as %q cancel=%v, want pending cancel-requested", j1.State, j1.CancelRequested)
	}
	if len(j1.Cells) != 2 || string(j1.Cells[2].Row) != `{"v":3}` {
		t.Errorf("job 1 cells wrong: %+v", j1.Cells)
	}
	if j1.TotalCells != 3 || string(j1.Spec) != string(testSpec) {
		t.Errorf("job 1 identity wrong: %+v", j1)
	}
	j2nd := st.Jobs["job-000002"]
	if j2nd.State != "done" || !j2nd.Terminal() || j2nd.WallClockS != 0.25 {
		t.Errorf("job 2 recovered as %+v", j2nd)
	}
}

func TestJournalCompactionAndEvict(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		submitRec("job-000001", 1),
		{Kind: KindCell, Job: "job-000001", Cell: 0, Row: json.RawMessage(`1`)},
		{Kind: KindFinish, Job: "job-000001", State: "done"},
		submitRec("job-000002", 1),
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if j.WALSize() != 0 {
		t.Errorf("wal not reset after compact: %d bytes", j.WALSize())
	}
	// Evict after compaction: the record lands in the fresh WAL and the next
	// compaction's snapshot no longer carries the job.
	if err := j.Append(Record{Kind: KindEvict, Job: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Recovered()
	if len(st.Jobs) != 1 || st.Jobs["job-000002"] == nil {
		t.Fatalf("evicted job resurrected: %d jobs", len(st.Jobs))
	}
	// The snapshot alone carries the state: the WAL file is empty.
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err != nil || fi.Size() != 0 {
		t.Errorf("wal after compact: %v size %d", err, fi.Size())
	}
}

func TestJournalCompactIfLarger(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(submitRec("job-000001", 1)); err != nil {
		t.Fatal(err)
	}
	if did, err := j.CompactIfLarger(1 << 20); err != nil || did {
		t.Errorf("small wal compacted: did=%v err=%v", did, err)
	}
	if did, err := j.CompactIfLarger(1); err != nil || !did {
		t.Errorf("oversize wal not compacted: did=%v err=%v", did, err)
	}
}

func TestJournalRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitRec("job-000001", 1))
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Flip a payload byte: snapshots are renamed atomically, so damage means
	// external corruption and open must refuse rather than guess.
	path := filepath.Join(dir, snapshotFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, Options{NoSync: true}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestJournalRejectsBadRecords(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Kind: KindSubmit}); err == nil {
		t.Error("record without job id accepted")
	}
	if err := j.Append(Record{Kind: "meh", Job: "job-000001"}); err == nil {
		t.Error("unknown kind accepted")
	}
}
