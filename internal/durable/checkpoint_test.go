package durable

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cs, err := OpenCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"alpha":0.2,"epochs":40,"q":{"states":2,"actions":2,"q":[0,1,2,3]}}`)
	info, err := cs.Put("trained", payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "trained" || info.Size != int64(len(payload)) || len(info.Hash) != 64 {
		t.Fatalf("info %+v", info)
	}

	got, gotInfo, err := cs.Get("trained")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || gotInfo.Hash != info.Hash {
		t.Error("payload round trip mismatch")
	}

	// The store survives reopen (index is durable).
	cs2, err := OpenCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := cs2.Get("trained"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reopen lost checkpoint: %v", err)
	}
	if list := cs2.List(); len(list) != 1 || list[0].Name != "trained" {
		t.Errorf("list %+v", list)
	}

	if err := cs2.Delete("trained"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs2.Get("trained"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("get after delete: %v", err)
	}
	if err := cs2.Delete("trained"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("double delete: %v", err)
	}
}

func TestCheckpointContentAddressing(t *testing.T) {
	cs, err := OpenCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"same":"bytes"}`)
	a, err := cs.Put("a", payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cs.Put("b", payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("identical payloads hashed differently: %s vs %s", a.Hash, b.Hash)
	}
	// Deleting one name keeps the shared blob alive for the other.
	if err := cs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if got, _, err := cs.Get("b"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("shared blob lost after aliased delete: %v", err)
	}
	// Rebinding a name to new content garbage-collects the old blob.
	if _, err := cs.Put("b", []byte(`{"new":"bytes"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cs.blobPath(a.Hash)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("orphan blob not collected: %v", err)
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	cs, err := OpenCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	info, err := cs.Put("c", []byte(`{"q":[1,2,3,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(cs.blobPath(info.Hash))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := os.WriteFile(cs.blobPath(info.Hash), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Get("c"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt blob read succeeded: %v", err)
	}
}

func TestCheckpointNameValidation(t *testing.T) {
	cs, err := OpenCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "../escape", "a/b", "has space", ".hidden", string(make([]byte, 200))} {
		if _, err := cs.Put(bad, []byte("x")); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"a", "trained-v2", "app_mpeg.dec", "X9"} {
		if _, err := cs.Put(good, []byte("x")); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}
