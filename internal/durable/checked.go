package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checked-file envelope: every snapshot and checkpoint payload is wrapped in
// a fixed header so a partially written or bit-rotted file is detected on
// read instead of deserialized into garbage.
//
//	offset 0  magic   "TDUR"
//	offset 4  uint32  format version (little-endian)
//	offset 8  uint32  payload length
//	offset 12 uint32  CRC32 (IEEE) of the payload
//	offset 16 payload
const (
	checkedMagic      = "TDUR"
	checkedVersion    = 1
	checkedHeaderSize = 16
)

// writeChecked writes the envelope plus payload to w.
func writeChecked(w io.Writer, payload []byte) error {
	var hdr [checkedHeaderSize]byte
	copy(hdr[0:4], checkedMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], checkedVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readChecked validates the envelope and returns the payload.
func readChecked(r io.Reader) ([]byte, error) {
	var hdr [checkedHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(hdr[0:4]) != checkedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != checkedVersion {
		return nil, fmt.Errorf("durable: unsupported format version %d (want %d)", v, checkedVersion)
	}
	length := binary.LittleEndian.Uint32(hdr[8:12])
	if length > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds max", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[12:16]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// writeFileAtomic writes the checked payload to path crash-safely: temp file
// in the same directory, fsync, rename over the target, fsync the directory.
// Readers therefore always see either the old complete file or the new one.
func writeFileAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: create temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := writeChecked(tmp, payload); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: rename into %s: %w", path, err)
	}
	return syncDir(dir)
}

// readCheckedFile reads and validates a checked file.
func readCheckedFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := readChecked(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
