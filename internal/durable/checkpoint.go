package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// ErrNoCheckpoint reports a lookup of a name the store does not hold.
var ErrNoCheckpoint = errors.New("durable: no such checkpoint")

// checkpointNameRE bounds names to something that is safe as a path
// component and an HTTP path segment.
var checkpointNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// CheckpointInfo describes one stored checkpoint.
type CheckpointInfo struct {
	// Name is the caller-chosen handle.
	Name string `json:"name"`
	// Hash is the SHA-256 of the payload; the blob file is named after it,
	// so two names holding identical state share one blob.
	Hash string `json:"hash"`
	// Size is the payload size in bytes (envelope excluded).
	Size int64 `json:"size"`
	// CreatedAt is when this name was (re)bound to the payload.
	CreatedAt time.Time `json:"created_at"`
}

// CheckpointStore is a named, content-addressed store of opaque checkpoint
// payloads (the service stores rl.Agent JSON). Blobs live in CRC-checked
// files keyed by content hash; an atomically rewritten index maps names to
// hashes, so every mutation is crash-safe.
type CheckpointStore struct {
	mu    sync.Mutex
	dir   string
	index map[string]CheckpointInfo
}

// OpenCheckpoints opens (creating if needed) the store in dir.
func OpenCheckpoints(dir string) (*CheckpointStore, error) {
	initMetrics()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create checkpoint dir: %w", err)
	}
	cs := &CheckpointStore{dir: dir, index: make(map[string]CheckpointInfo)}
	payload, err := readCheckedFile(cs.indexPath())
	switch {
	case err == nil:
		var entries []CheckpointInfo
		if err := json.Unmarshal(payload, &entries); err != nil {
			return nil, fmt.Errorf("durable: decode checkpoint index: %w", err)
		}
		for _, e := range entries {
			cs.index[e.Name] = e
		}
	case errors.Is(err, fs.ErrNotExist):
	default:
		return nil, fmt.Errorf("durable: read checkpoint index: %w", err)
	}
	return cs, nil
}

func (cs *CheckpointStore) indexPath() string { return filepath.Join(cs.dir, "index.json") }

func (cs *CheckpointStore) blobPath(hash string) string {
	return filepath.Join(cs.dir, hash+".ckpt")
}

// saveIndexLocked atomically rewrites the name → hash index.
func (cs *CheckpointStore) saveIndexLocked() error {
	entries := make([]CheckpointInfo, 0, len(cs.index))
	for _, e := range cs.index {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	payload, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("durable: encode checkpoint index: %w", err)
	}
	return writeFileAtomic(cs.indexPath(), payload)
}

// referencedLocked reports whether any name other than except maps to hash.
func (cs *CheckpointStore) referencedLocked(hash, except string) bool {
	for name, e := range cs.index {
		if name != except && e.Hash == hash {
			return true
		}
	}
	return false
}

// Put stores payload under name, overwriting a previous binding. The blob
// write and index update are each atomic; a crash between them leaves an
// unreferenced blob, which the next Put or Delete of that hash reuses or
// removes.
func (cs *CheckpointStore) Put(name string, payload []byte) (CheckpointInfo, error) {
	if !checkpointNameRE.MatchString(name) {
		return CheckpointInfo{}, fmt.Errorf("durable: invalid checkpoint name %q (want %s)", name, checkpointNameRE)
	}
	if len(payload) == 0 || len(payload) > MaxPayload {
		return CheckpointInfo{}, fmt.Errorf("durable: checkpoint payload must be 1..%d bytes, got %d", MaxPayload, len(payload))
	}
	sum := sha256.Sum256(payload)
	hash := hex.EncodeToString(sum[:])
	info := CheckpointInfo{Name: name, Hash: hash, Size: int64(len(payload)), CreatedAt: time.Now().UTC()}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, err := os.Stat(cs.blobPath(hash)); errors.Is(err, fs.ErrNotExist) {
		if err := writeFileAtomic(cs.blobPath(hash), payload); err != nil {
			return CheckpointInfo{}, err
		}
	} else if err != nil {
		return CheckpointInfo{}, fmt.Errorf("durable: stat checkpoint blob: %w", err)
	}
	prev, had := cs.index[name]
	cs.index[name] = info
	if err := cs.saveIndexLocked(); err != nil {
		cs.index[name] = prev
		if !had {
			delete(cs.index, name)
		}
		return CheckpointInfo{}, err
	}
	if had && prev.Hash != hash && !cs.referencedLocked(prev.Hash, "") {
		os.Remove(cs.blobPath(prev.Hash)) // best-effort garbage collection
	}
	mCheckpointWrites.Inc()
	return info, nil
}

// Get returns the payload and metadata stored under name, re-verifying the
// blob's checksum and content hash on every read.
func (cs *CheckpointStore) Get(name string) ([]byte, CheckpointInfo, error) {
	cs.mu.Lock()
	info, ok := cs.index[name]
	cs.mu.Unlock()
	if !ok {
		return nil, CheckpointInfo{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	payload, err := readCheckedFile(cs.blobPath(info.Hash))
	if err != nil {
		return nil, CheckpointInfo{}, fmt.Errorf("durable: checkpoint %q: %w", name, err)
	}
	if sum := sha256.Sum256(payload); hex.EncodeToString(sum[:]) != info.Hash {
		return nil, CheckpointInfo{}, fmt.Errorf("durable: checkpoint %q: %w: content hash mismatch", name, ErrCorrupt)
	}
	mCheckpointReads.Inc()
	return payload, info, nil
}

// Delete unbinds name and removes its blob when no other name references it.
func (cs *CheckpointStore) Delete(name string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	info, ok := cs.index[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	delete(cs.index, name)
	if err := cs.saveIndexLocked(); err != nil {
		cs.index[name] = info
		return err
	}
	if !cs.referencedLocked(info.Hash, name) {
		os.Remove(cs.blobPath(info.Hash)) // best-effort; an orphan blob is harmless
	}
	return nil
}

// List returns the stored checkpoints sorted by name.
func (cs *CheckpointStore) List() []CheckpointInfo {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]CheckpointInfo, 0, len(cs.index))
	for _, e := range cs.index {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
