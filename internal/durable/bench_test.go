package durable

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
)

// benchPayload is a realistic cell record: ~200 bytes of JSON.
var benchPayload = []byte(`{"kind":"cell","job":"job-000123","cell":4,"row":{"App":"tachyon","Policy":"proposed","AvgTempC":63.2,"PeakTempC":78.9,"CyclingMTTF":11.4,"AgingMTTF":9.7,"CombinedMTTF":5.2,"ExecTimeS":412}}`)

func BenchmarkWALAppend(b *testing.B) {
	for _, sync := range []bool{false, true} {
		name := "nosync"
		if sync {
			name = "fsync"
		}
		b.Run(name, func(b *testing.B) {
			w, _, err := OpenWAL(filepath.Join(b.TempDir(), "wal.log"), sync)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(benchPayload) + frameHeaderSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(benchPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover measures a cold open replaying a 1k-job journal (each
// job: submit, four cells, finish — 6k records).
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	j, err := OpenJournal(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	row, _ := json.Marshal(map[string]any{"AvgTempC": 63.2, "CombinedMTTF": 5.2})
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		if err := j.Append(Record{Kind: KindSubmit, Job: id, Spec: testSpec, TotalCells: 4}); err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			if err := j.Append(Record{Kind: KindCell, Job: id, Cell: c, Row: row}); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Append(Record{Kind: KindFinish, Job: id, State: "done", WallClockS: 1}); err != nil {
			b.Fatal(err)
		}
	}
	size := j.WALSize()
	j.Close()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := OpenJournal(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(j.Recovered().Jobs); got != 1000 {
			b.Fatalf("recovered %d jobs", got)
		}
		j.Close()
	}
}
