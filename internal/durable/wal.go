// Package durable is the crash-safety layer of the job service: an
// append-only, CRC-framed write-ahead log of job lifecycle records, periodic
// atomic snapshots that let the log be compacted, and a content-addressed
// checkpoint store for learned RL agent state. Everything is plain files
// under one data directory, written so that a SIGKILL at any byte leaves the
// store recoverable: frames are length-prefixed and checksummed, a torn tail
// is truncated on open, and snapshots are written to a temp file, fsynced
// and renamed into place.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// frameHeaderSize is the per-record framing overhead: a uint32 payload
// length followed by a uint32 CRC32 (IEEE) of the payload, little-endian.
const frameHeaderSize = 8

// MaxPayload bounds one WAL record (and one checked file payload). A length
// prefix beyond it is treated as corruption, not an allocation request.
const MaxPayload = 64 << 20

// ErrCorrupt reports a frame whose checksum or length failed validation
// somewhere other than the file tail (a torn tail is silently truncated; a
// mid-file corruption is not recoverable by truncation and is surfaced).
var ErrCorrupt = errors.New("durable: corrupt WAL frame")

// WAL is an append-only log of byte payloads with optional fsync-on-commit.
// It is not internally locked; the owning Journal serializes access.
type WAL struct {
	f       *os.File
	path    string
	size    int64
	records int
	sync    bool
}

// OpenWAL opens (creating if needed) the log at path, validates every frame
// and truncates a torn or corrupt tail. It returns the surviving payloads in
// append order. sync selects fsync-on-commit for subsequent appends.
func OpenWAL(path string, sync bool) (*WAL, [][]byte, error) {
	initMetrics()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open wal: %w", err)
	}
	payloads, good, err := scanFrames(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: stat wal: %w", err)
	}
	if st.Size() > good {
		// Torn tail from a crash mid-append: drop the partial frame so the
		// next append starts on a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: sync truncated wal: %w", err)
		}
		mWALTornTails.Inc()
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: seek wal end: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path, size: good, records: len(payloads), sync: sync}, payloads, nil
}

// scanFrames reads frames from the start of f, returning the payloads and
// the offset just past the last fully valid frame. A short or checksum-bad
// frame at the tail ends the scan (the caller truncates); the same damage
// followed by further readable bytes cannot be distinguished from a torn
// tail cheaply, so any trailing garbage is treated as the tail.
func scanFrames(f *os.File) ([][]byte, int64, error) {
	var (
		payloads [][]byte
		off      int64
		hdr      [frameHeaderSize]byte
	)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("durable: seek wal: %w", err)
	}
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return payloads, off, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxPayload {
			return payloads, off, nil // corrupt length: treat as tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return payloads, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off, nil // torn or bit-rotted frame
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int64(length)
	}
}

// Append commits one payload: frame write plus, when fsync-on-commit is on,
// an fsync whose latency lands in the durable_wal_fsync_seconds histogram.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("durable: wal payload %d bytes exceeds max %d", len(payload), MaxPayload)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if w.sync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: wal fsync: %w", err)
		}
		mWALFsync.Observe(time.Since(start).Seconds())
	}
	w.size += int64(len(frame))
	w.records++
	mWALRecords.Inc()
	mWALBytes.Add(int64(len(frame)))
	return nil
}

// Sync flushes buffered appends to stable storage (a no-op effort-wise when
// fsync-on-commit already ran).
func (w *WAL) Sync() error { return w.f.Sync() }

// Reset truncates the log to empty; the caller must already have persisted
// an equivalent snapshot (Journal.Compact does).
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: wal reset seek: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal reset sync: %w", err)
	}
	w.size = 0
	w.records = 0
	return nil
}

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Records returns the number of frames in the log.
func (w *WAL) Records() int { return w.records }

// Close syncs and closes the file.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
