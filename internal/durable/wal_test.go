package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTempWAL(t *testing.T, sync bool) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, got, err := OpenWAL(path, sync)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(got))
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func TestWALRoundTrip(t *testing.T) {
	w, path := openTempWAL(t, true)
	var want [][]byte
	for i := 0; i < 25; i++ {
		p := []byte(fmt.Sprintf(`{"i":%d,"pad":%q}`, i, bytes.Repeat([]byte("x"), i*7)))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 25 {
		t.Errorf("records = %d, want 25", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// Appending after reopen lands after the replayed frames.
	if err := w2.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, got, err = OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 26 || string(got[25]) != "tail" {
		t.Fatalf("append-after-reopen lost: %d records", len(got))
	}
}

// TestWALTornTailEveryOffset is the byte-level half of the crash-recovery
// property test: a WAL truncated at EVERY byte offset inside the last frame
// must reopen cleanly with exactly the preceding records intact,
// bit-identical to the uninterrupted log.
func TestWALTornTailEveryOffset(t *testing.T) {
	w, path := openTempWAL(t, true)
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf(`{"cell":%d,"row":[1.5,%d]}`, i, i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeaderSize + len(want[len(want)-1])
	lastStart := len(full) - lastFrame

	for cut := lastStart; cut <= len(full); cut++ {
		dir := t.TempDir()
		torn := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, got, err := OpenWAL(torn, true)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantN := len(want) - 1
		if cut == len(full) {
			wantN = len(want)
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("cut %d: record %d not bit-identical", cut, i)
			}
		}
		// The torn tail is gone from disk, and the log accepts new appends.
		if err := w2.Append([]byte("resumed")); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		w2.Close()
		_, again, err := OpenWAL(torn, true)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(again) != wantN+1 || string(again[wantN]) != "resumed" {
			t.Errorf("cut %d: post-truncation append lost (%d records)", cut, len(again))
		}
	}
}

func TestWALRejectsCorruptLength(t *testing.T) {
	w, path := openTempWAL(t, false)
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Append a frame claiming an absurd payload length.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'x'})
	f.Close()
	_, got, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("corrupt-length tail not dropped: %d records", len(got))
	}
}

func TestWALReset(t *testing.T) {
	w, path := openTempWAL(t, false)
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 || w.Records() != 0 {
		t.Errorf("reset left size=%d records=%d", w.Size(), w.Records())
	}
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, got, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "after" {
		t.Fatalf("post-reset log wrong: %d records", len(got))
	}
}

func TestWALOversizePayloadRejected(t *testing.T) {
	w, _ := openTempWAL(t, false)
	if err := w.Append(make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversize payload accepted")
	}
}
