package reliability

import "math"

// Stream is an online rainflow counter: samples are fed one at a time with
// Push and identified cycles are delivered to the emit callback as soon as
// they close; Finish flushes the final reversal and the residual half
// cycles. For any sample sequence the emitted cycles are bit-identical, in
// value and order, to Rainflow over the same samples: the reversal
// extraction replicates ExtractReversals one sample at a time, and the
// three-point collapse runs over the same stack contents.
//
// After setup the steady-state Push path performs no allocation (the
// reversal stack grows only when the temperature envelope expands, which
// settles within the first few cycles of a stationary profile).
type Stream struct {
	emit  func(Cycle)
	stack []float64

	// Reversal-extraction state, mirroring ExtractReversals: the first
	// sample is held back until a direction is established (skipping the
	// initial flat run), then each direction flip emits the previous
	// extremum into the rainflow stack.
	started bool
	haveDir bool
	first   float64
	prev    float64
	rising  bool
}

// NewStream creates a streaming rainflow counter delivering cycles to emit
// (which must be non-nil).
func NewStream(emit func(Cycle)) *Stream {
	return &Stream{emit: emit, stack: make([]float64, 0, 64)}
}

// Push feeds one sample.
func (s *Stream) Push(v float64) {
	if !s.started {
		s.started = true
		s.first = v
		s.prev = v
		return
	}
	if v == s.prev {
		return
	}
	if !s.haveDir {
		// First direction established: the series start is the first
		// reversal.
		s.haveDir = true
		s.feed(s.first)
		s.rising = v > s.prev
		s.prev = v
		return
	}
	nowRising := v > s.prev
	if nowRising != s.rising {
		s.feed(s.prev)
		s.rising = nowRising
	}
	s.prev = v
}

// feed pushes one reversal onto the stack and collapses closed cycles,
// exactly as the batch Rainflow loop does.
func (s *Stream) feed(r float64) {
	s.stack = append(s.stack, r)
	stack := s.stack
	for len(stack) >= 3 {
		n := len(stack)
		x := math.Abs(stack[n-1] - stack[n-2])
		y := math.Abs(stack[n-2] - stack[n-3])
		if x < y {
			break
		}
		if n == 3 {
			// Y contains the starting point: half cycle, drop start.
			s.emit(makeCycle(stack[0], stack[1], 0.5))
			stack[0], stack[1] = stack[1], stack[2]
			stack = stack[:2]
		} else {
			// Y is interior: full cycle, remove its two points.
			s.emit(makeCycle(stack[n-3], stack[n-2], 1.0))
			stack[n-3] = stack[n-1]
			stack = stack[:n-2]
		}
	}
	s.stack = stack
}

// Finish flushes the last reversal and emits the residual ranges as half
// cycles. The stream must not be pushed to afterwards; use Reset to start a
// new series.
func (s *Stream) Finish() {
	if s.haveDir {
		s.feed(s.prev)
	}
	for i := 1; i < len(s.stack); i++ {
		s.emit(makeCycle(s.stack[i-1], s.stack[i], 0.5))
	}
}

// Reset clears all state for a new series, retaining the stack capacity.
func (s *Stream) Reset() {
	s.stack = s.stack[:0]
	s.started = false
	s.haveDir = false
}

// MTTFAccumulator consumes a uniformly sampled temperature series online and
// produces the same cycling and aging MTTFs as
// CyclingParams.CyclingMTTFFromSeries / AgingParams.AgingMTTFFromSeries
// would over the retained series — bit-identical, since the fatigue stress
// is accumulated per emitted cycle in emission order and the aging sum per
// sample in sample order, matching the batch loops. It lets callers that
// only need the scalar lifetime metrics drop the trace entirely.
type MTTFAccumulator struct {
	cyc   CyclingParams
	aging AgingParams
	rf    *Stream

	stress   float64 // accumulated Eq. 6 plastic fatigue stress
	agingSum float64 // sum of 1/alpha(T) over samples
	n        int     // samples pushed
	cycles   int64   // cycles emitted (full and half)

	// onCycleHook, when set, observes every emitted cycle together with the
	// stress delta it contributed (0 for sub-threshold ranges). It fires
	// after the stress is accumulated, so it can never perturb the MTTF.
	onCycleHook func(c Cycle, stressDelta float64)
}

// NewMTTFAccumulator creates an accumulator with the given reliability
// constants.
func NewMTTFAccumulator(cyc CyclingParams, aging AgingParams) *MTTFAccumulator {
	m := &MTTFAccumulator{cyc: cyc, aging: aging}
	m.rf = NewStream(m.onCycle)
	return m
}

func (m *MTTFAccumulator) onCycle(c Cycle) {
	m.cycles++
	var delta float64
	if c.Range > m.cyc.TTh {
		delta = c.Count * math.Pow(c.Range-m.cyc.TTh, m.cyc.B) *
			math.Exp(-m.cyc.EaEV/(BoltzmannEV*kelvin(c.Max)))
		m.stress += delta
	}
	if m.onCycleHook != nil {
		m.onCycleHook(c, delta)
	}
}

// SetOnCycle installs an observer invoked for every rainflow cycle the
// accumulator closes, with the Eq. 6 stress delta that cycle contributed
// (zero when the range sits below the cycling threshold). The hook is purely
// observational — damage attribution uses it to pin each cycle's stress to
// the decision epoch in force when the cycle closed. Pass nil to detach.
func (m *MTTFAccumulator) SetOnCycle(fn func(c Cycle, stressDelta float64)) {
	m.onCycleHook = fn
}

// Stress returns the Eq. 6 plastic fatigue stress accumulated so far (the
// residual half cycles only contribute after Finish).
func (m *MTTFAccumulator) Stress() float64 { return m.stress }

// Push feeds one temperature sample (degrees Celsius).
func (m *MTTFAccumulator) Push(tempC float64) {
	m.rf.Push(tempC)
	m.agingSum += 1 / m.aging.Alpha(tempC)
	m.n++
}

// Samples returns the number of samples pushed so far.
func (m *MTTFAccumulator) Samples() int { return m.n }

// Cycles returns the number of rainflow cycles (full and half) identified so
// far; the residue half cycles only appear after Finish.
func (m *MTTFAccumulator) Cycles() int64 { return m.cycles }

// Finish closes the rainflow count and returns the cycling and aging MTTFs
// in years for a series sampled every sampleIntervalS seconds. The
// accumulator must not be pushed to afterwards; use Reset to start over.
func (m *MTTFAccumulator) Finish(sampleIntervalS float64) (cyclingY, agingY float64) {
	m.rf.Finish()
	cyclingY = m.cyc.CyclingMTTFFromStress(m.stress, float64(m.n)*sampleIntervalS)
	if m.n == 0 {
		agingY = m.aging.AgingMTTF(0)
	} else {
		agingY = m.aging.AgingMTTF(m.agingSum / float64(m.n))
	}
	return cyclingY, agingY
}

// Reset clears all accumulated state for a new series.
func (m *MTTFAccumulator) Reset() {
	m.rf.Reset()
	m.stress = 0
	m.agingSum = 0
	m.n = 0
	m.cycles = 0
}
