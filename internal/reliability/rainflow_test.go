package reliability

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestExtractReversals(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"empty", nil, nil},
		{"single", []float64{5}, nil},
		{"flat", []float64{3, 3, 3}, nil},
		{"monotone up", []float64{1, 2, 3, 4}, []float64{1, 4}},
		{"monotone down", []float64{4, 3, 1}, []float64{4, 1}},
		{"triangle", []float64{0, 5, 0}, []float64{0, 5, 0}},
		{"plateau peak", []float64{0, 5, 5, 5, 0}, []float64{0, 5, 0}},
		{"zigzag", []float64{0, 2, 1, 3, 0}, []float64{0, 2, 1, 3, 0}},
		{"leading flat", []float64{1, 1, 1, 4, 2}, []float64{1, 4, 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ExtractReversals(tc.in)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ExtractReversals(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// The canonical ASTM E1049 example history.
func TestRainflowASTMExample(t *testing.T) {
	series := []float64{-2, 1, -3, 5, -1, 3, -4, 4, -2}
	cycles := Rainflow(series)
	// Expected (range, count) multiset per ASTM E1049 Table X1.1:
	// 3:0.5, 4:0.5, 4:1.0, 6:0.5, 8:0.5, 8:0.5, 9:0.5.
	type rc struct{ r, c float64 }
	var got []rc
	for _, cy := range cycles {
		got = append(got, rc{cy.Range, cy.Count})
	}
	want := []rc{{3, 0.5}, {4, 0.5}, {4, 1.0}, {6, 0.5}, {8, 0.5}, {8, 0.5}, {9, 0.5}}
	less := func(s []rc) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].r != s[j].r {
				return s[i].r < s[j].r
			}
			return s[i].c < s[j].c
		}
	}
	sort.Slice(got, less(got))
	sort.Slice(want, less(want))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rainflow cycles = %v, want %v", got, want)
	}
}

func TestRainflowTotalCountMatchesReversals(t *testing.T) {
	// Property: sum of cycle counts equals (#reversals-1)/2 — every
	// reversal-to-reversal range is accounted exactly once (full cycles
	// consume two ranges, halves one).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([]float64, 50)
		for i := range series {
			series[i] = math.Round(rng.Float64() * 20)
		}
		rev := ExtractReversals(series)
		if len(rev) < 2 {
			return true
		}
		var total float64
		for _, c := range Rainflow(series) {
			total += c.Count
		}
		want := float64(len(rev)-1) / 2
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRainflowSimpleTriangleWave(t *testing.T) {
	// Repeating triangle wave 30->50->30: each period closes one cycle of
	// range 20 (plus boundary halves).
	var series []float64
	for i := 0; i < 10; i++ {
		series = append(series, 30, 50)
	}
	series = append(series, 30)
	cycles := Rainflow(series)
	var full, half float64
	for _, c := range cycles {
		if c.Range != 20 {
			t.Errorf("unexpected cycle range %g", c.Range)
		}
		if c.Count == 1 {
			full++
		} else {
			half += c.Count
		}
	}
	if full+half != 10 {
		t.Errorf("total cycles = %g, want 10", full+half)
	}
}

func TestRainflowCycleFields(t *testing.T) {
	cycles := Rainflow([]float64{40, 60, 40})
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles, want 2 half cycles", len(cycles))
	}
	for _, c := range cycles {
		if c.Range != 20 {
			t.Errorf("Range = %g, want 20", c.Range)
		}
		if c.Max != 60 {
			t.Errorf("Max = %g, want 60", c.Max)
		}
		if c.Mean != 50 {
			t.Errorf("Mean = %g, want 50", c.Mean)
		}
		if c.Count != 0.5 {
			t.Errorf("Count = %g, want 0.5", c.Count)
		}
	}
}

func TestRainflowEmptyAndConstant(t *testing.T) {
	if got := Rainflow(nil); got != nil {
		t.Errorf("Rainflow(nil) = %v, want nil", got)
	}
	if got := Rainflow([]float64{42, 42, 42}); got != nil {
		t.Errorf("Rainflow(constant) = %v, want nil", got)
	}
}

// Property: rainflow never produces a cycle larger than the global range.
func TestRainflowRangeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([]float64, 80)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range series {
			series[i] = rng.Float64() * 40
			lo = math.Min(lo, series[i])
			hi = math.Max(hi, series[i])
		}
		for _, c := range Rainflow(series) {
			if c.Range > hi-lo+1e-9 {
				return false
			}
			if c.Max > hi+1e-9 || c.Max < lo-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRainflow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 2400) // a 10-minute trace at 0.25 s
	for i := range series {
		series[i] = 45 + 10*math.Sin(float64(i)/7) + rng.Float64()*3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rainflow(series)
	}
}

func BenchmarkThermalStress(b *testing.B) {
	p := DefaultCyclingParams()
	cycles := make([]Cycle, 500)
	for i := range cycles {
		cycles[i] = Cycle{Range: 5 + float64(i%20), Max: 50, Count: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ThermalStress(cycles)
	}
}
