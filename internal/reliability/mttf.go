package reliability

import "math"

// Physical constants.
const (
	// BoltzmannEV is the Boltzmann constant in eV/K.
	BoltzmannEV = 8.617333262e-5
	// SecondsPerYear converts simulated seconds to calendar years.
	SecondsPerYear = 365.25 * 24 * 3600
)

// CyclingParams hold the Coffin-Manson / Miner constants of Eq. 3-6.
type CyclingParams struct {
	// ATC is the empirically determined Coffin-Manson scale constant
	// (cycles * K^b); set it via CalibrateCycling.
	ATC float64
	// TTh is the amplitude (K) at which elastic deformation begins; cycles
	// with a smaller range cause no plastic fatigue and are ignored.
	TTh float64
	// B is the Coffin-Manson exponent.
	B float64
	// EaEV is the activation energy in eV for the Arrhenius factor of
	// Eq. 3 (temperature acceleration of fatigue).
	EaEV float64
}

// DefaultCyclingParams returns the fatigue constants used throughout this
// repository. The ATC scale is calibrated so that a reference mild cycling
// profile (3 K swings above threshold around 42 C with a 3.5 s period, i.e. a
// lightly loaded core) yields a 10-year MTTF, mirroring the paper's
// normalization "MTTF of an unstressed core is 10 years".
func DefaultCyclingParams() CyclingParams {
	p := CyclingParams{TTh: 1.0, B: 2.35, EaEV: 0.5}
	p.ATC = calibrateATC(p, 3.0, 42.0, 3.5, 10.0)
	return p
}

// calibrateATC picks ATC so a sustained train of identical cycles with the
// given amplitude above threshold (K), maximum temperature (C) and period (s)
// has an MTTF of targetYears.
func calibrateATC(p CyclingParams, ampAboveTh, maxC, periodS, targetYears float64) float64 {
	stressPerCycle := math.Pow(ampAboveTh, p.B) * math.Exp(-p.EaEV/(BoltzmannEV*kelvin(maxC)))
	// MTTF(years) = ATC * duration(years) / stress. For a train of identical
	// cycles over D seconds: stress = (D/period)*stressPerCycle, so
	// MTTF = ATC * period / (SecondsPerYear * stressPerCycle). Solve for ATC.
	return targetYears * SecondsPerYear * stressPerCycle / periodS
}

// CyclesToFailure evaluates Eq. 3 for one cycle: the number of such cycles
// the core survives. Cycles at or below the elastic threshold return +Inf.
func (p CyclingParams) CyclesToFailure(c Cycle) float64 {
	if c.Range <= p.TTh {
		return math.Inf(1)
	}
	return p.ATC * math.Pow(c.Range-p.TTh, -p.B) * math.Exp(p.EaEV/(BoltzmannEV*kelvin(c.Max)))
}

// ThermalStress evaluates Eq. 6 over a set of rainflow cycles: the
// accumulated plastic fatigue stress. Cycles below the elastic threshold
// contribute nothing; half cycles contribute half.
func (p CyclingParams) ThermalStress(cycles []Cycle) float64 {
	var stress float64
	for _, c := range cycles {
		if c.Range <= p.TTh {
			continue
		}
		stress += c.Count * math.Pow(c.Range-p.TTh, p.B) *
			math.Exp(-p.EaEV/(BoltzmannEV*kelvin(c.Max)))
	}
	return stress
}

// CyclingMTTF combines Eq. 3-6: MTTF = ATC * duration / ThermalStress,
// where duration is the observed time in seconds. The result is in years.
// If the profile produced no plastic cycles the MTTF is +Inf.
func (p CyclingParams) CyclingMTTF(cycles []Cycle, durationS float64) float64 {
	return p.CyclingMTTFFromStress(p.ThermalStress(cycles), durationS)
}

// CyclingMTTFFromStress converts an already-accumulated Eq. 6 fatigue stress
// over durationS seconds into the cycling MTTF in years (+Inf when no cycle
// crossed the elastic threshold). Both the batch CyclingMTTF and the
// streaming MTTFAccumulator reduce through this one expression, so callers
// holding a per-core stress (the lifetime-attribution surfaces) derive MTTFs
// bit-identical to either pipeline.
func (p CyclingParams) CyclingMTTFFromStress(stress, durationS float64) float64 {
	if stress == 0 {
		return math.Inf(1)
	}
	return p.ATC * (durationS / SecondsPerYear) / stress
}

// CyclingMTTFFromSeries is a convenience that rainflow-counts a temperature
// series sampled at sampleIntervalS seconds and returns the cycling MTTF in
// years.
func (p CyclingParams) CyclingMTTFFromSeries(series []float64, sampleIntervalS float64) float64 {
	return p.CyclingMTTF(Rainflow(series), float64(len(series))*sampleIntervalS)
}

// AgingParams hold the constants for the temperature-aging model of Eq. 1-2.
// The fault density alpha(T) follows an Arrhenius law
//
//	alpha(T) = Alpha0 * exp(EaEV / (k*T))
//
// (characteristic life shrinks as temperature rises), which covers
// electromigration and NBTI style wear-out as the paper notes.
type AgingParams struct {
	// Alpha0 is the characteristic-life scale in years; set via
	// CalibrateAging.
	Alpha0 float64
	// EaEV is the activation energy in eV.
	EaEV float64
	// WeibullBeta is the Weibull slope of R(t) = exp(-(t*A)^beta).
	WeibullBeta float64
}

// DefaultAgingParams returns aging constants calibrated so a core idling at
// 33 C has a 10-year MTTF (the paper's normalization).
func DefaultAgingParams() AgingParams {
	p := AgingParams{EaEV: 0.5, WeibullBeta: 2.0}
	p.Alpha0 = p.calibrateAlpha0(33.0, 10.0)
	return p
}

// calibrateAlpha0 picks Alpha0 so a core held at idleC forever has an MTTF of
// targetYears.
func (p AgingParams) calibrateAlpha0(idleC, targetYears float64) float64 {
	// At constant temperature, A = 1/alpha(T) and MTTF = Gamma(1+1/beta)/A
	// = Gamma(1+1/beta) * alpha(T). Solve for Alpha0.
	g := math.Gamma(1 + 1/p.WeibullBeta)
	return targetYears / (g * math.Exp(p.EaEV/(BoltzmannEV*kelvin(idleC))))
}

// Alpha returns the fault-density characteristic life alpha(T) in years for a
// temperature in degrees Celsius.
func (p AgingParams) Alpha(tempC float64) float64 {
	return p.Alpha0 * math.Exp(p.EaEV/(BoltzmannEV*kelvin(tempC)))
}

// Aging evaluates Eq. 1 over a sequence of (temperature, duration) intervals:
// A = sum_i dt_i / (tp * alpha(T_i)), with tp the total execution time. The
// result has units 1/years.
func (p AgingParams) Aging(tempsC, durationsS []float64) float64 {
	if len(tempsC) != len(durationsS) || len(tempsC) == 0 {
		return 0
	}
	var total float64
	for _, d := range durationsS {
		total += d
	}
	if total == 0 {
		return 0
	}
	var a float64
	for i, t := range tempsC {
		a += durationsS[i] / total / p.Alpha(t)
	}
	return a
}

// AgingFromSeries evaluates Eq. 1 for a uniformly sampled temperature series.
func (p AgingParams) AgingFromSeries(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var a float64
	for _, t := range series {
		a += 1 / p.Alpha(t)
	}
	return a / float64(len(series))
}

// AgingMTTF evaluates Eq. 2 for a given aging value A: the mean of the
// Weibull lifetime distribution R(t) = exp(-(t*A)^beta), i.e.
// Gamma(1+1/beta)/A, in years. Zero aging yields +Inf.
func (p AgingParams) AgingMTTF(aging float64) float64 {
	if aging <= 0 {
		return math.Inf(1)
	}
	return math.Gamma(1+1/p.WeibullBeta) / aging
}

// AgingMTTFFromSeries computes the aging MTTF (years) directly from a
// uniformly sampled temperature series in degrees Celsius.
func (p AgingParams) AgingMTTFFromSeries(series []float64) float64 {
	return p.AgingMTTF(p.AgingFromSeries(series))
}

// Reliability evaluates R(t) = exp(-(t*A)^beta) at time t years for aging A.
func (p AgingParams) Reliability(tYears, aging float64) float64 {
	if tYears < 0 {
		return 1
	}
	return math.Exp(-math.Pow(tYears*aging, p.WeibullBeta))
}

func kelvin(c float64) float64 { return c + 273.15 }

// CombinedMTTF combines independent wear-out mechanisms under the
// sum-of-failure-rates (SOFR) model the paper cites in Section 4.1: failure
// rates add, so 1/MTTF = sum_i 1/MTTF_i. Infinite inputs (mechanisms that
// never trigger) contribute nothing; no finite input yields +Inf; a
// non-positive input yields 0 (already failed).
func CombinedMTTF(mttfs ...float64) float64 {
	var rate float64
	for _, m := range mttfs {
		if m <= 0 {
			return 0
		}
		if !math.IsInf(m, 1) {
			rate += 1 / m
		}
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}
