package reliability

import (
	"math"
	"math/rand"
	"testing"
)

// streamCycles runs the streaming counter over the series and returns the
// emitted cycles in order.
func streamCycles(series []float64) []Cycle {
	var out []Cycle
	s := NewStream(func(c Cycle) { out = append(out, c) })
	for _, v := range series {
		s.Push(v)
	}
	s.Finish()
	return out
}

func testSeries() map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	walk := make([]float64, 5000)
	t := 50.0
	for i := range walk {
		t += rng.NormFloat64() * 1.5
		walk[i] = t
	}
	sine := make([]float64, 2000)
	for i := range sine {
		sine[i] = 55 + 8*math.Sin(float64(i)/13) + 3*math.Sin(float64(i)/3.7)
	}
	plateau := make([]float64, 0, 600)
	for i := 0; i < 100; i++ {
		plateau = append(plateau, 40, 40, 60, 60, 60, 45)
	}
	return map[string][]float64{
		"empty":      nil,
		"single":     {42},
		"constant":   {42, 42, 42, 42},
		"twoPoint":   {40, 50},
		"monotonic":  {30, 35, 41, 48, 56},
		"flatStart":  {44, 44, 44, 50, 40, 55},
		"sawtooth":   {40, 60, 40, 60, 40, 60, 40},
		"plateaus":   plateau,
		"randomWalk": walk,
		"sine":       sine,
	}
}

// TestStreamMatchesBatchRainflow requires the streaming counter to emit
// exactly the cycles of the batch Rainflow, in the same order, bit for bit.
func TestStreamMatchesBatchRainflow(t *testing.T) {
	for name, series := range testSeries() {
		want := Rainflow(series)
		got := streamCycles(series)
		if len(got) != len(want) {
			t.Errorf("%s: stream emitted %d cycles, batch %d", name, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: cycle %d: stream %+v vs batch %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestMTTFAccumulatorMatchesBatch requires the incremental MTTF to be
// bit-identical to the FromSeries batch helpers.
func TestMTTFAccumulatorMatchesBatch(t *testing.T) {
	cyc := DefaultCyclingParams()
	aging := DefaultAgingParams()
	const interval = 0.25
	for name, series := range testSeries() {
		m := NewMTTFAccumulator(cyc, aging)
		for _, v := range series {
			m.Push(v)
		}
		gotCyc, gotAging := m.Finish(interval)
		wantCyc := cyc.CyclingMTTFFromSeries(series, interval)
		wantAging := aging.AgingMTTFFromSeries(series)
		if gotCyc != wantCyc && !(math.IsInf(gotCyc, 1) && math.IsInf(wantCyc, 1)) {
			t.Errorf("%s: cycling MTTF stream %.17g vs batch %.17g", name, gotCyc, wantCyc)
		}
		if gotAging != wantAging && !(math.IsInf(gotAging, 1) && math.IsInf(wantAging, 1)) {
			t.Errorf("%s: aging MTTF stream %.17g vs batch %.17g", name, gotAging, wantAging)
		}
		if want := int64(len(Rainflow(series))); m.Cycles() != want {
			t.Errorf("%s: cycle count %d vs batch %d", name, m.Cycles(), want)
		}
	}
}

// TestMTTFAccumulatorReset checks an accumulator can be reused after Reset.
func TestMTTFAccumulatorReset(t *testing.T) {
	cyc := DefaultCyclingParams()
	aging := DefaultAgingParams()
	series := testSeries()["sine"]
	m := NewMTTFAccumulator(cyc, aging)
	for _, v := range series {
		m.Push(v)
	}
	m.Finish(0.25)
	m.Reset()
	for _, v := range series {
		m.Push(v)
	}
	gotCyc, gotAging := m.Finish(0.25)
	if want := cyc.CyclingMTTFFromSeries(series, 0.25); gotCyc != want {
		t.Errorf("after Reset: cycling MTTF %.17g vs %.17g", gotCyc, want)
	}
	if want := aging.AgingMTTFFromSeries(series); gotAging != want {
		t.Errorf("after Reset: aging MTTF %.17g vs %.17g", gotAging, want)
	}
}

// TestStreamPushAllocFree asserts the steady-state Push path performs no
// allocation once the reversal stack has warmed up.
func TestStreamPushAllocFree(t *testing.T) {
	m := NewMTTFAccumulator(DefaultCyclingParams(), DefaultAgingParams())
	series := testSeries()["sine"]
	for _, v := range series {
		m.Push(v)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		m.Push(series[i%len(series)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocated %.1f times per call", allocs)
	}
}
