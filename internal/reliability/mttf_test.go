package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCyclingCalibration(t *testing.T) {
	p := DefaultCyclingParams()
	// The reference profile: 3 K above threshold (range 4 K with TTh=1),
	// Tmax 42 C, 3.5 s period, must give 10-year MTTF.
	var series []float64
	for i := 0; i < 1000; i++ {
		series = append(series, 38, 42)
	}
	series = append(series, 38)
	mttf := p.CyclingMTTFFromSeries(series, 1.75) // 2 samples per 3.5 s period
	if math.Abs(mttf-10) > 0.2 {
		t.Errorf("reference-profile cycling MTTF = %.3f years, want ~10", mttf)
	}
}

func TestCyclesToFailure(t *testing.T) {
	p := DefaultCyclingParams()
	// Below elastic threshold: never fails.
	if n := p.CyclesToFailure(Cycle{Range: 0.8, Max: 80}); !math.IsInf(n, 1) {
		t.Errorf("sub-threshold cycle: N = %g, want +Inf", n)
	}
	// Larger swings fail sooner.
	small := p.CyclesToFailure(Cycle{Range: 10, Max: 60})
	big := p.CyclesToFailure(Cycle{Range: 30, Max: 60})
	if big >= small {
		t.Errorf("bigger swing must fail sooner: N(30)=%g >= N(10)=%g", big, small)
	}
	// Hotter cycles fail sooner (Arrhenius in Eq. 3 with exp(-Ea/kT) in
	// stress, exp(+Ea/kT) in N).
	cool := p.CyclesToFailure(Cycle{Range: 20, Max: 45})
	hot := p.CyclesToFailure(Cycle{Range: 20, Max: 80})
	if hot >= cool {
		t.Errorf("hotter cycle must fail sooner: N(80C)=%g >= N(45C)=%g", hot, cool)
	}
}

func TestThermalStressProperties(t *testing.T) {
	p := DefaultCyclingParams()
	if s := p.ThermalStress(nil); s != 0 {
		t.Errorf("stress of no cycles = %g, want 0", s)
	}
	sub := []Cycle{{Range: 0.5, Max: 70, Count: 1}}
	if s := p.ThermalStress(sub); s != 0 {
		t.Errorf("stress of sub-threshold cycles = %g, want 0", s)
	}
	// Half cycle contributes half.
	full := p.ThermalStress([]Cycle{{Range: 15, Max: 60, Count: 1}})
	half := p.ThermalStress([]Cycle{{Range: 15, Max: 60, Count: 0.5}})
	if math.Abs(full-2*half) > 1e-12 {
		t.Errorf("half cycle stress %g should be half of %g", half, full)
	}
	// Additivity.
	a := []Cycle{{Range: 15, Max: 60, Count: 1}}
	b := []Cycle{{Range: 25, Max: 70, Count: 1}}
	ab := append(append([]Cycle{}, a...), b...)
	if math.Abs(p.ThermalStress(ab)-(p.ThermalStress(a)+p.ThermalStress(b))) > 1e-12 {
		t.Error("stress must be additive over cycles")
	}
}

// Consistency between Eq. 3-5 (per-cycle Miner) and the closed form Eq. 6:
// MTTF from CyclesToFailure + Miner must equal ATC*duration/stress.
func TestMinerClosedFormConsistency(t *testing.T) {
	p := DefaultCyclingParams()
	cycles := []Cycle{
		{Range: 12, Max: 55, Count: 1},
		{Range: 20, Max: 65, Count: 1},
		{Range: 8, Max: 45, Count: 1},
	}
	duration := 30.0 // seconds
	// Direct Miner: NTC = m / sum(1/N_i); MTTF = NTC * total / m.
	var invSum float64
	m := 0.0
	for _, c := range cycles {
		invSum += c.Count / p.CyclesToFailure(c)
		m += c.Count
	}
	ntc := m / invSum
	direct := ntc * (duration / SecondsPerYear) / m
	closed := p.CyclingMTTF(cycles, duration)
	if math.Abs(direct-closed)/closed > 1e-9 {
		t.Errorf("Miner direct %g != closed form %g", direct, closed)
	}
}

func TestCyclingMTTFNoStress(t *testing.T) {
	p := DefaultCyclingParams()
	if m := p.CyclingMTTF(nil, 100); !math.IsInf(m, 1) {
		t.Errorf("MTTF with no cycles = %g, want +Inf", m)
	}
}

// More frequent cycling (same amplitude) must reduce cycling MTTF.
func TestCyclingMTTFFrequencyEffect(t *testing.T) {
	p := DefaultCyclingParams()
	mk := func(period int) []float64 {
		var s []float64
		for i := 0; i < 600; i++ {
			if (i/period)%2 == 0 {
				s = append(s, 40)
			} else {
				s = append(s, 60)
			}
		}
		return s
	}
	fast := p.CyclingMTTFFromSeries(mk(2), 1)
	slow := p.CyclingMTTFFromSeries(mk(10), 1)
	if fast >= slow {
		t.Errorf("faster cycling must hurt: fast=%g slow=%g", fast, slow)
	}
}

// Larger amplitude (same frequency) must reduce cycling MTTF.
func TestCyclingMTTFAmplitudeEffect(t *testing.T) {
	p := DefaultCyclingParams()
	mk := func(hi float64) []float64 {
		var s []float64
		for i := 0; i < 300; i++ {
			s = append(s, 40, hi)
		}
		return s
	}
	gentle := p.CyclingMTTFFromSeries(mk(48), 1)
	harsh := p.CyclingMTTFFromSeries(mk(70), 1)
	if harsh >= gentle {
		t.Errorf("larger swings must hurt: harsh=%g gentle=%g", harsh, gentle)
	}
}

func TestAgingCalibration(t *testing.T) {
	p := DefaultAgingParams()
	series := make([]float64, 100)
	for i := range series {
		series[i] = 33.0
	}
	mttf := p.AgingMTTFFromSeries(series)
	if math.Abs(mttf-10) > 1e-6 {
		t.Errorf("idle-core aging MTTF = %g years, want 10", mttf)
	}
}

func TestAgingTemperatureMonotone(t *testing.T) {
	p := DefaultAgingParams()
	mk := func(temp float64) []float64 {
		s := make([]float64, 50)
		for i := range s {
			s[i] = temp
		}
		return s
	}
	cool := p.AgingMTTFFromSeries(mk(40))
	hot := p.AgingMTTFFromSeries(mk(70))
	if hot >= cool {
		t.Errorf("hotter core must age faster: hot=%g cool=%g", hot, cool)
	}
	// Paper scale check: ~18 C average reduction gave ~5x MTTF (Table 2
	// tachyon set 1: 69.2 C -> 50.6 C, 0.7 -> 3.6 years). With Ea=0.5 eV the
	// model should give a 3-7x ratio over that range.
	a := p.AgingMTTFFromSeries(mk(69.2))
	b := p.AgingMTTFFromSeries(mk(50.6))
	if r := b / a; r < 2.5 || r > 8 {
		t.Errorf("MTTF ratio over 50.6 vs 69.2 C = %.2f, want 2.5-8 (paper ~5)", r)
	}
}

func TestAgingIntervalForm(t *testing.T) {
	p := DefaultAgingParams()
	// Interval form must agree with series form for uniform sampling.
	temps := []float64{40, 50, 60, 45}
	durs := []float64{1, 1, 1, 1}
	a1 := p.Aging(temps, durs)
	a2 := p.AgingFromSeries(temps)
	if math.Abs(a1-a2) > 1e-15 {
		t.Errorf("Aging interval form %g != series form %g", a1, a2)
	}
	// Mismatched or empty inputs.
	if p.Aging(temps, durs[:2]) != 0 {
		t.Error("mismatched lengths should return 0")
	}
	if p.Aging(nil, nil) != 0 {
		t.Error("empty input should return 0")
	}
	if p.Aging(temps, []float64{0, 0, 0, 0}) != 0 {
		t.Error("zero total duration should return 0")
	}
}

// Weighted-duration property: doubling the duration weight of the hottest
// interval increases aging.
func TestAgingDurationWeighting(t *testing.T) {
	p := DefaultAgingParams()
	temps := []float64{40, 70}
	base := p.Aging(temps, []float64{5, 5})
	hotter := p.Aging(temps, []float64{2, 8})
	if hotter <= base {
		t.Errorf("more time hot must raise aging: %g <= %g", hotter, base)
	}
}

func TestAgingMTTFEdgeCases(t *testing.T) {
	p := DefaultAgingParams()
	if m := p.AgingMTTF(0); !math.IsInf(m, 1) {
		t.Errorf("AgingMTTF(0) = %g, want +Inf", m)
	}
	if m := p.AgingMTTF(-1); !math.IsInf(m, 1) {
		t.Errorf("AgingMTTF(-1) = %g, want +Inf", m)
	}
	if got := p.AgingFromSeries(nil); got != 0 {
		t.Errorf("AgingFromSeries(nil) = %g, want 0", got)
	}
}

func TestReliabilityCurve(t *testing.T) {
	p := DefaultAgingParams()
	a := 0.1 // 1/years
	if r := p.Reliability(0, a); r != 1 {
		t.Errorf("R(0) = %g, want 1", r)
	}
	if r := p.Reliability(-5, a); r != 1 {
		t.Errorf("R(-5) = %g, want 1 (clamped)", r)
	}
	r1 := p.Reliability(1, a)
	r10 := p.Reliability(10, a)
	if !(r1 > r10 && r10 > 0 && r1 < 1) {
		t.Errorf("R must decrease: R(1)=%g R(10)=%g", r1, r10)
	}
}

// Property: aging MTTF is inversely proportional to aging.
func TestAgingMTTFInverse(t *testing.T) {
	p := DefaultAgingParams()
	f := func(x uint16) bool {
		a := float64(x)/1000 + 0.001
		m1 := p.AgingMTTF(a)
		m2 := p.AgingMTTF(2 * a)
		return math.Abs(m1-2*m2)/m1 < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Integration property: the Weibull mean equals numeric integration of R(t)
// (Eq. 2: MTTF = integral of R(t) dt).
func TestAgingMTTFMatchesIntegralOfReliability(t *testing.T) {
	p := DefaultAgingParams()
	a := 0.25
	mttf := p.AgingMTTF(a)
	// Trapezoidal integration of R(t) out to 10x the MTTF.
	h := mttf / 2000
	var integral float64
	for i := 0; i < 20000; i++ {
		t0 := float64(i) * h
		t1 := t0 + h
		integral += (p.Reliability(t0, a) + p.Reliability(t1, a)) / 2 * h
	}
	if math.Abs(integral-mttf)/mttf > 1e-3 {
		t.Errorf("integral of R = %g, Weibull mean = %g", integral, mttf)
	}
}

func TestCombinedMTTFSOFR(t *testing.T) {
	// Two equal mechanisms halve the lifetime.
	if got := CombinedMTTF(10, 10); math.Abs(got-5) > 1e-12 {
		t.Errorf("CombinedMTTF(10,10) = %g, want 5", got)
	}
	// An infinite mechanism contributes nothing.
	if got := CombinedMTTF(10, math.Inf(1)); math.Abs(got-10) > 1e-12 {
		t.Errorf("CombinedMTTF(10,Inf) = %g, want 10", got)
	}
	// All infinite: never fails.
	if got := CombinedMTTF(math.Inf(1), math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("CombinedMTTF(Inf,Inf) = %g, want +Inf", got)
	}
	// Already-failed mechanism dominates.
	if got := CombinedMTTF(10, 0); got != 0 {
		t.Errorf("CombinedMTTF(10,0) = %g, want 0", got)
	}
	// Empty input: no mechanisms, never fails.
	if got := CombinedMTTF(); !math.IsInf(got, 1) {
		t.Errorf("CombinedMTTF() = %g, want +Inf", got)
	}
}

// Property: the combined MTTF never exceeds the weakest mechanism.
func TestCombinedMTTFBoundedByWeakest(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a)/1000 + 0.01
		y := float64(b)/1000 + 0.01
		c := CombinedMTTF(x, y)
		return c <= math.Min(x, y)+1e-12 && c > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
