package reliability_test

import (
	"fmt"

	"repro/internal/reliability"
)

// Rainflow-count a simple thermal profile and evaluate its fatigue stress.
func ExampleRainflow() {
	// A core that swings 40 -> 60 -> 40 C twice.
	profile := []float64{40, 60, 40, 60, 40}
	cycles := reliability.Rainflow(profile)
	var full, half int
	for _, c := range cycles {
		if c.Count == 1 {
			full++
		} else {
			half++
		}
	}
	fmt.Printf("cycles: %d full, %d half\n", full, half)
	p := reliability.DefaultCyclingParams()
	fmt.Printf("stress positive: %v\n", p.ThermalStress(cycles) > 0)
	// Output:
	// cycles: 0 full, 4 half
	// stress positive: true
}

// Compute the aging MTTF of a core held at two different temperatures.
func ExampleAgingParams_AgingMTTFFromSeries() {
	p := reliability.DefaultAgingParams()
	idle := make([]float64, 10)
	hot := make([]float64, 10)
	for i := range idle {
		idle[i], hot[i] = 33, 70
	}
	fmt.Printf("idle: %.1f years\n", p.AgingMTTFFromSeries(idle))
	fmt.Printf("hot core ages faster: %v\n", p.AgingMTTFFromSeries(hot) < 5)
	// Output:
	// idle: 10.0 years
	// hot core ages faster: true
}

// Combine wear-out mechanisms with the sum-of-failure-rates model.
func ExampleCombinedMTTF() {
	fmt.Printf("%.1f years\n", reliability.CombinedMTTF(10, 10))
	// Output:
	// 5.0 years
}
