// Package reliability implements the lifetime (MTTF) computations of the
// paper's Section 4: temperature-driven aging (Eq. 1-2) and thermal-cycling
// fatigue via rainflow counting, the Coffin-Manson relation and Miner's rule
// (Eq. 3-6).
package reliability

import "math"

// Cycle is one thermal cycle identified by rainflow counting.
type Cycle struct {
	// Range is the cycle amplitude deltaT in kelvin (== degrees Celsius).
	Range float64
	// Max is the maximum temperature within the cycle, degrees Celsius.
	Max float64
	// Mean is the mean of the two reversal temperatures, degrees Celsius.
	Mean float64
	// Count is 1.0 for a full (closed) cycle and 0.5 for a half cycle.
	Count float64
}

// ExtractReversals reduces a temperature series to its sequence of local
// peaks and valleys (including the first and last samples). Runs of equal
// values are collapsed. A series with fewer than two distinct values yields
// a nil slice.
func ExtractReversals(series []float64) []float64 {
	if len(series) < 2 {
		return nil
	}
	var rev []float64
	// Skip the initial flat run.
	i := 1
	for i < len(series) && series[i] == series[0] {
		i++
	}
	if i == len(series) {
		return nil
	}
	rev = append(rev, series[0])
	rising := series[i] > series[0]
	prev := series[i]
	for _, v := range series[i+1:] {
		if v == prev {
			continue
		}
		nowRising := v > prev
		if nowRising != rising {
			rev = append(rev, prev)
			rising = nowRising
		}
		prev = v
	}
	rev = append(rev, prev)
	return rev
}

// Rainflow performs ASTM E1049-style rainflow counting (the "simple rainflow"
// of Downing & Socie cited by the paper) on a temperature series, returning
// the identified thermal cycles. Closed cycles have Count 1.0; the residual
// ranges remaining at the end of the history are counted as half cycles
// (Count 0.5).
func Rainflow(series []float64) []Cycle {
	rev := ExtractReversals(series)
	if len(rev) < 2 {
		return nil
	}
	var cycles []Cycle
	// stack holds indices into rev of not-yet-consumed reversals.
	stack := make([]float64, 0, len(rev))
	// startConsumed tracks whether rev[0] is still at the bottom of the
	// stack (ASTM rule: ranges containing the start count as half cycles).
	for _, r := range rev {
		stack = append(stack, r)
		for len(stack) >= 3 {
			n := len(stack)
			x := math.Abs(stack[n-1] - stack[n-2])
			y := math.Abs(stack[n-2] - stack[n-3])
			if x < y {
				break
			}
			if n == 3 {
				// Y contains the starting point: half cycle, drop start.
				cycles = append(cycles, makeCycle(stack[0], stack[1], 0.5))
				stack[0], stack[1] = stack[1], stack[2]
				stack = stack[:2]
			} else {
				// Y is interior: full cycle, remove its two points.
				cycles = append(cycles, makeCycle(stack[n-3], stack[n-2], 1.0))
				stack[n-3] = stack[n-1]
				stack = stack[:n-2]
			}
		}
	}
	// Residue: each remaining consecutive range is a half cycle.
	for i := 1; i < len(stack); i++ {
		cycles = append(cycles, makeCycle(stack[i-1], stack[i], 0.5))
	}
	return cycles
}

func makeCycle(a, b, count float64) Cycle {
	return Cycle{
		Range: math.Abs(a - b),
		Max:   math.Max(a, b),
		Mean:  (a + b) / 2,
		Count: count,
	}
}
