package platform

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testApp(work float64) *workload.Application {
	threads := make([]*workload.Thread, 4)
	for i := range threads {
		threads[i] = workload.NewThread(i, "test", []workload.Phase{
			{Kind: workload.Burst, Work: work, Activity: 0.95},
			{Kind: workload.Sync, Work: work / 10, Activity: 0.1},
		})
	}
	return workload.NewApplication("test", threads, 0)
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero tick", func(c *Config) { c.TickS = 0 }},
		{"no levels", func(c *Config) { c.Levels = nil }},
		{"core mismatch", func(c *Config) { c.Sched.NumCores = 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(cfg, testApp(1))
		})
	}
}

func TestPlatformRunsWorkloadToCompletion(t *testing.T) {
	app := testApp(5)
	p := New(DefaultConfig(), app)
	steps := 0
	for !p.Done() {
		p.Step()
		steps++
		if steps > 200000 {
			t.Fatal("workload never finished")
		}
	}
	if math.Abs(app.CompletedWork()-app.TotalWork()) > 1e-6 {
		t.Errorf("completed %g != total %g", app.CompletedWork(), app.TotalWork())
	}
	if p.Now() <= 0 {
		t.Error("simulated time did not advance")
	}
	if p.Meter().TotalEnergy() <= 0 {
		t.Error("no energy was metered")
	}
}

func TestTemperaturesRiseUnderLoad(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	amb := p.Temperatures()[0]
	for i := 0; i < 3000; i++ { // 30 s of heavy load
		p.Step()
	}
	temps := p.Temperatures()
	for c, v := range temps {
		if v <= amb+5 {
			t.Errorf("core %d only reached %.1f C from %.1f C under full load", c, v, amb)
		}
	}
}

func TestOndemandRampsUpUnderLoad(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	for i := 0; i < 100; i++ { // 1 s
		p.Step()
	}
	levels := p.CoreLevels()
	// All four cores have a hungry thread: ondemand must be at max.
	max := len(p.Levels()) - 1
	for c, l := range levels {
		if l != max {
			t.Errorf("core %d at level %d, want %d under full load", c, l, max)
		}
	}
}

func TestPowersaveKeepsLowestLevel(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	p.SetGovernorAll(governor.Powersave, 0)
	for i := 0; i < 200; i++ {
		p.Step()
	}
	for c, l := range p.CoreLevels() {
		if l != 0 {
			t.Errorf("core %d at level %d under powersave, want 0", c, l)
		}
	}
}

func TestFrequencyAffectsCompletionTime(t *testing.T) {
	run := func(kind governor.Kind, fixed int) float64 {
		app := testApp(20)
		p := New(DefaultConfig(), app)
		p.SetGovernorAll(kind, fixed)
		for !p.Done() {
			p.Step()
			if p.Now() > 10000 {
				t.Fatal("did not finish")
			}
		}
		return p.Now()
	}
	fast := run(governor.Userspace, len(DefaultConfig().Levels)-1)
	slow := run(governor.Powersave, 0)
	if fast >= slow {
		t.Errorf("3.4 GHz run (%.1f s) should beat powersave (%.1f s)", fast, slow)
	}
	ratio := slow / fast
	if math.Abs(ratio-3.4/1.6) > 0.4 {
		t.Errorf("time ratio %.2f, want near %.2f", ratio, 3.4/1.6)
	}
}

func TestPowersaveUsesLessPower(t *testing.T) {
	run := func(kind governor.Kind) float64 {
		p := New(DefaultConfig(), testApp(1e6))
		p.SetGovernorAll(kind, 0)
		for i := 0; i < 2000; i++ {
			p.Step()
		}
		return p.Meter().AverageDynamicPower()
	}
	if ps, perf := run(governor.Powersave), run(governor.Performance); ps >= perf {
		t.Errorf("powersave power %.1f W >= performance %.1f W", ps, perf)
	}
}

func TestReadSensorsQuantizesAndCharges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorQuantC = 1.0
	p := New(cfg, testApp(1e6))
	for i := 0; i < 500; i++ {
		p.Step()
	}
	before := p.PerfCounters()
	dst := make([]float64, p.NumCores())
	p.ReadSensors(dst)
	after := p.PerfCounters()
	if after.CacheMisses-before.CacheMisses != cfg.SampleCacheMisses {
		t.Errorf("cache miss charge = %d, want %d", after.CacheMisses-before.CacheMisses, cfg.SampleCacheMisses)
	}
	if after.PageFaults-before.PageFaults != cfg.SamplePageFaults {
		t.Errorf("page fault charge = %d, want %d", after.PageFaults-before.PageFaults, cfg.SamplePageFaults)
	}
	for i, v := range dst {
		if v != math.Round(v) {
			t.Errorf("sensor %d = %g not quantized to 1 C", i, v)
		}
	}
	// Oracle access must be free and unquantized in general.
	c0 := p.PerfCounters()
	p.Temperatures()
	if p.PerfCounters() != c0 {
		t.Error("Temperatures() must not charge counters")
	}
}

func TestMigrationChargesCounters(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, testApp(1e6))
	p.Step() // place threads
	before := p.PerfCounters()
	// Force a migration by pinning thread 0 to a different core.
	cur := p.Scheduler().Placement(0)
	target := (cur + 1) % p.NumCores()
	if err := p.SetAffinity(0, sched.AffinityMask(1)<<uint(target)); err != nil {
		t.Fatal(err)
	}
	p.Step()
	after := p.PerfCounters()
	if after.CacheMisses-before.CacheMisses < cfg.MigrationCacheMisses {
		t.Errorf("migration did not charge cache misses: %d", after.CacheMisses-before.CacheMisses)
	}
}

func TestSetCoreLevelPins(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	if err := p.SetCoreLevel(2, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.Step()
	}
	if p.CoreLevels()[2] != 1 {
		t.Errorf("core 2 level = %d, want pinned 1", p.CoreLevels()[2])
	}
	if err := p.SetCoreLevel(9, 0); err == nil {
		t.Error("expected error for bad core")
	}
	if err := p.SetCoreLevel(0, 99); err == nil {
		t.Error("expected error for bad level")
	}
}

func TestSetCoreGovernorValidation(t *testing.T) {
	p := New(DefaultConfig(), testApp(1))
	if err := p.SetCoreGovernor(-1, governor.Ondemand, 0); err == nil {
		t.Error("expected error for bad core")
	}
	if err := p.SetCoreGovernor(0, governor.Performance, 0); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAppSwitchDetection(t *testing.T) {
	mk := func(name string) *workload.Application {
		return workload.NewApplication(name, []*workload.Thread{
			workload.NewThread(0, name, []workload.Phase{{Kind: workload.Burst, Work: 2, Activity: 0.9}}),
		}, 0)
	}
	seq := workload.NewSequence(mk("a"), mk("b"))
	p := New(DefaultConfig(), seq)
	if p.AppSwitches() != 0 {
		t.Errorf("AppSwitches at start = %d, want 0", p.AppSwitches())
	}
	for !p.Done() {
		p.Step()
		if p.Now() > 1000 {
			t.Fatal("sequence did not finish")
		}
	}
	if p.AppSwitches() != 1 {
		t.Errorf("AppSwitches = %d, want 1", p.AppSwitches())
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	var coldLeak, hotLeak float64
	// Sample leakage early (cold) ...
	for i := 0; i < 50; i++ {
		p.Step()
	}
	m := p.Meter()
	coldLeak = m.StaticEnergy() / m.Elapsed()
	// ... and after heating up.
	e0, t0 := m.StaticEnergy(), m.Elapsed()
	for i := 0; i < 5000; i++ {
		p.Step()
	}
	hotLeak = (m.StaticEnergy() - e0) / (m.Elapsed() - t0)
	if hotLeak <= coldLeak {
		t.Errorf("hot leakage %.2f W should exceed cold leakage %.2f W", hotLeak, coldLeak)
	}
}

func TestHeterogeneousPowerScale(t *testing.T) {
	run := func(scale []float64) float64 {
		cfg := DefaultConfig()
		cfg.CorePowerScale = scale
		p := New(cfg, testApp(1e6))
		for i := 0; i < 1000; i++ {
			p.Step()
		}
		return p.Meter().AverageDynamicPower()
	}
	full := run(nil)
	half := run([]float64{0.5, 0.5, 0.5, 0.5})
	if half >= full {
		t.Errorf("halved power scale should cut power: %g vs %g", half, full)
	}
}

func TestHeterogeneousPowerScaleValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CorePowerScale = []float64{1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong CorePowerScale length")
		}
	}()
	New(cfg, testApp(1))
}

func TestConcurrentWorkloadOnPlatform(t *testing.T) {
	mk := func(name string) *workload.Application {
		threads := make([]*workload.Thread, 3)
		for i := range threads {
			threads[i] = workload.NewThread(i, name, []workload.Phase{
				{Kind: workload.Burst, Work: 5, Activity: 0.8},
				{Kind: workload.Sync, Work: 0.5, Activity: 0.1},
			})
		}
		return workload.NewApplication(name, threads, 0)
	}
	con := workload.NewConcurrent(mk("a"), mk("b"))
	p := New(DefaultConfig(), con)
	for !p.Done() && p.Now() < 1000 {
		p.Step()
	}
	if !p.Done() {
		t.Fatal("concurrent workload did not finish")
	}
	// No app switch should have been observed: the thread set is stable.
	if p.AppSwitches() != 0 {
		t.Errorf("AppSwitches = %d, want 0 for concurrent workload", p.AppSwitches())
	}
}

func TestManycorePlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridRows, cfg.GridCols = 4, 4
	cfg.Sched.NumCores = 16
	threads := make([]*workload.Thread, 20)
	for i := range threads {
		threads[i] = workload.NewThread(i, "many", []workload.Phase{
			{Kind: workload.Burst, Work: 8, Activity: 0.8},
		})
	}
	app := workload.NewApplication("many", threads, 0)
	p := New(cfg, app)
	if p.NumCores() != 16 {
		t.Fatalf("NumCores = %d, want 16", p.NumCores())
	}
	for !p.Done() && p.Now() < 500 {
		p.Step()
	}
	if !p.Done() {
		t.Fatal("manycore workload did not finish")
	}
	// All 16 cores must have been used (load balancing spreads 20 threads).
	temps := p.Temperatures()
	if len(temps) != 16 {
		t.Fatalf("got %d temperatures", len(temps))
	}
	for c, v := range temps {
		if v < cfg.Floorplan.AmbientC {
			t.Errorf("core %d below ambient: %g", c, v)
		}
	}
}

func TestManycoreMismatchPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridRows, cfg.GridCols = 4, 4 // 16 cores, but Sched.NumCores is 4
	defer func() {
		if recover() == nil {
			t.Error("expected panic for grid/scheduler mismatch")
		}
	}()
	New(cfg, testApp(1))
}

func BenchmarkPlatformStep(b *testing.B) {
	p := New(DefaultConfig(), testApp(1e12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func TestDVFSTransitionsCounted(t *testing.T) {
	p := New(DefaultConfig(), testApp(1e6))
	for i := 0; i < 500; i++ {
		p.Step()
	}
	// Ondemand ramps from the lowest to the highest level: at least one
	// transition per core.
	if p.DVFSTransitions() < int64(p.NumCores()) {
		t.Errorf("DVFSTransitions = %d, want >= %d", p.DVFSTransitions(), p.NumCores())
	}
}

func TestDVFSTransitionCostSlowsExecution(t *testing.T) {
	run := func(cost float64) float64 {
		cfg := DefaultConfig()
		cfg.DVFSTransitionS = cost
		app := testApp(30)
		p := New(cfg, app)
		// Conservative steps a level per interval: many transitions.
		p.SetGovernorAll(governor.Conservative, 0)
		for !p.Done() && p.Now() < 10000 {
			p.Step()
		}
		return p.Now()
	}
	if free, costly := run(0), run(0.5); costly <= free {
		t.Errorf("transition cost should slow execution: %g vs %g", costly, free)
	}
}

func TestSingleCorePlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridRows, cfg.GridCols = 1, 1
	cfg.Sched.NumCores = 1
	threads := []*workload.Thread{
		workload.NewThread(0, "solo", []workload.Phase{{Kind: workload.Burst, Work: 10, Activity: 0.9}}),
		workload.NewThread(1, "solo", []workload.Phase{{Kind: workload.Burst, Work: 10, Activity: 0.9}}),
	}
	app := workload.NewApplication("solo", threads, 0)
	p := New(cfg, app)
	for !p.Done() && p.Now() < 1000 {
		p.Step()
	}
	if !p.Done() {
		t.Fatal("single-core platform did not finish")
	}
	if p.NumCores() != 1 {
		t.Errorf("NumCores = %d", p.NumCores())
	}
}
