// Package platform simulates the paper's experimental platform: an Intel
// quad-core running Linux, with per-core DVFS driven by cpufreq governors,
// on-board thermal sensors, performance counters and an energy meter.
//
// Each simulation tick couples four substrates:
//
//	scheduler -> per-core activity -> power model -> thermal RC network
//
// and exposes to controllers exactly the interfaces the paper's run-time
// system uses: quantized thermal sensor reads, affinity masks, governor
// selection, and perf-style counters.
package platform

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Counters model perf-style event counts (Fig. 6 plots cache misses and page
// faults against the temperature sampling interval).
type Counters struct {
	CacheMisses int64
	PageFaults  int64
}

// SolverKind selects the thermal integrator driving the platform.
type SolverKind int

const (
	// SolverFixed is the default: the precomputed constant-dt implicit
	// stepper (thermal.FixedStepper). The platform always steps the network
	// by the fixed TickS, so the whole update collapses to two dense matvecs
	// with zero per-step allocation — the fast path for long campaigns.
	SolverFixed SolverKind = iota
	// SolverEuler is the explicit forward-Euler reference integrator.
	SolverEuler
	// SolverRK4 is the fourth-order Runge-Kutta reference integrator.
	SolverRK4
	// SolverImplicit is the backward-Euler reference (LU solve per step);
	// SolverFixed matches it to rounding error at the same TickS.
	SolverImplicit
)

// String returns the solver name.
func (k SolverKind) String() string {
	switch k {
	case SolverFixed:
		return "fixed"
	case SolverEuler:
		return "euler"
	case SolverRK4:
		return "rk4"
	case SolverImplicit:
		return "implicit"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(k))
	}
}

// Config parameterizes the simulated platform.
type Config struct {
	// TickS is the simulation time step in seconds.
	TickS float64
	// Solver selects the thermal integrator; the zero value is the
	// precomputed constant-dt fast path (SolverFixed). The reference
	// integrators remain available for validation runs.
	Solver SolverKind
	// Floorplan configures the thermal network.
	Floorplan thermal.FloorplanConfig
	// GridRows and GridCols select the core-grid dimensions; zero means
	// the paper's 2x2 quad-core. Sched.NumCores must equal their product.
	GridRows, GridCols int
	// Power is the per-core power model.
	Power power.Model
	// Levels is the DVFS operating-point table.
	Levels []power.Level
	// Sched configures the thread scheduler.
	Sched sched.Config
	// GovernorIntervalS is how often governors re-decide frequencies.
	GovernorIntervalS float64
	// SensorQuantC is the thermal sensor quantization step in degrees
	// Celsius (coretemp-style sensors report whole degrees).
	SensorQuantC float64
	// SensorNoiseC is the standard deviation of sensor read noise.
	SensorNoiseC float64
	// SampleCacheMisses / SamplePageFaults are the counter costs charged
	// per sensor read: the monitoring daemon pollutes caches and touches
	// pages every time it wakes (this produces the Fig. 6 counter trends).
	SampleCacheMisses int64
	SamplePageFaults  int64
	// MigrationCacheMisses / MigrationPageFaults are charged per thread
	// migration.
	MigrationCacheMisses int64
	MigrationPageFaults  int64
	// DVFSTransitionS is the execution stall charged to every thread on a
	// core whose DVFS level changes (PLL relock / voltage ramp latency).
	// Zero (the default) disables the cost.
	DVFSTransitionS float64
	// CorePowerScale optionally scales each core's dynamic power,
	// modeling heterogeneous (big.LITTLE-style) cores together with
	// Sched.CoreSpeed. nil or an entry of 0 means 1.0.
	CorePowerScale []float64
	// Seed drives sensor noise.
	Seed int64
}

// DefaultConfig returns the calibrated quad-core platform configuration.
func DefaultConfig() Config {
	return Config{
		TickS:                0.01,
		Floorplan:            thermal.DefaultFloorplanConfig(),
		Power:                power.DefaultModel(),
		Levels:               power.DefaultLevels(),
		Sched:                sched.DefaultConfig(),
		GovernorIntervalS:    0.1,
		SensorQuantC:         1.0,
		SensorNoiseC:         0.0,
		SampleCacheMisses:    60000,
		SamplePageFaults:     1200,
		MigrationCacheMisses: 40000,
		MigrationPageFaults:  60,
		Seed:                 7,
	}
}

// Platform is the simulated machine. It is not safe for concurrent use.
type Platform struct {
	cfg    Config
	fp     *thermal.Floorplan
	solver thermal.Stepper
	sch    *sched.Scheduler
	work   workload.Workload
	rng    *rand.Rand

	// DVFS state.
	coreLevel []int
	govs      []governor.Governor

	// Governor utilization accounting.
	busyAccum []float64
	govClock  float64

	meter    power.Meter
	counters Counters
	now      float64

	lastMigrations  int64
	lastThreads     []*workload.Thread
	appSwitches     int
	dvfsTransitions int64

	// powerScale is the resolved per-core dynamic-power multiplier.
	powerScale []float64

	// levelFreq[l] caches cfg.Levels[l].FrequencyGHz for the per-tick
	// frequency fill; levelDynCoef[l] caches the activity-independent dynamic
	// power factor Ceff*V^2*f of each level.
	levelFreq    []float64
	levelDynCoef []float64

	// leak incrementally evaluates the per-core leakage exponential (one
	// tracker per core; see power.LeakageTracker).
	leak []power.LeakageTracker

	// scratch buffers
	powerVec  []float64
	coreTemps []float64
	dynPow    []float64
	freqs     []float64
	// coreVolt[c] is the supply voltage of core c's current level (refreshed
	// together with freqs); leakW is the bulk leakage-power scratch.
	coreVolt []float64
	leakW    []float64
	// freqsDirty marks that a coreLevel changed and freqs must be refilled
	// from levelFreq before the next scheduler tick.
	freqsDirty bool
}

// New builds a platform executing the given workload. The workload's current
// threads are installed into the scheduler; governors default to ondemand.
func New(cfg Config, work workload.Workload) *Platform {
	return build(cfg, work, nil)
}

// NewWithStepper builds a platform like New but driven by an externally
// constructed thermal stepper — typically one lane of a thermal.BatchStepper,
// so a batch driver can advance many platforms' thermal states in one fused
// pass. The stepper must be sized for the configured floorplan and accept
// steps of cfg.TickS; cfg.Solver is ignored.
func NewWithStepper(cfg Config, work workload.Workload, st thermal.Stepper) *Platform {
	if st == nil {
		panic("platform: NewWithStepper: nil stepper")
	}
	return build(cfg, work, st)
}

// GridDims returns the effective core-grid dimensions for a config (the
// zero-value grid is the paper's 2x2 quad-core). Batch planners use this to
// construct floorplans value-identical to the one build will create.
func GridDims(cfg Config) (rows, cols int) {
	rows, cols = cfg.GridRows, cfg.GridCols
	if rows == 0 && cols == 0 {
		rows, cols = 2, 2
	}
	return rows, cols
}

func build(cfg Config, work workload.Workload, st thermal.Stepper) *Platform {
	if cfg.TickS <= 0 {
		panic(fmt.Sprintf("platform: TickS must be positive, got %g", cfg.TickS))
	}
	if len(cfg.Levels) == 0 {
		panic("platform: need at least one DVFS level")
	}
	rows, cols := GridDims(cfg)
	fp := thermal.GridFloorplan(rows, cols, cfg.Floorplan)
	n := fp.NumCores()
	if cfg.Sched.NumCores != n {
		panic(fmt.Sprintf("platform: scheduler cores %d != floorplan cores %d", cfg.Sched.NumCores, n))
	}
	if st == nil {
		st = newStepper(cfg, fp.Net)
	} else if got := len(st.Temperatures()); got != fp.Net.NumNodes() {
		panic(fmt.Sprintf("platform: external stepper has %d nodes, floorplan needs %d", got, fp.Net.NumNodes()))
	}
	p := &Platform{
		cfg:          cfg,
		fp:           fp,
		solver:       st,
		sch:          sched.New(cfg.Sched),
		work:         work,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		coreLevel:    make([]int, n),
		govs:         make([]governor.Governor, n),
		busyAccum:    make([]float64, n),
		powerVec:     make([]float64, fp.Net.NumNodes()),
		coreTemps:    make([]float64, n),
		dynPow:       make([]float64, n),
		freqs:        make([]float64, n),
		coreVolt:     make([]float64, n),
		leakW:        make([]float64, n),
		levelFreq:    make([]float64, len(cfg.Levels)),
		levelDynCoef: make([]float64, len(cfg.Levels)),
		leak:         make([]power.LeakageTracker, n),
		// The initial thread installation is not an application switch.
		appSwitches: -1,
		// Force the initial freqs fill on the first Step.
		freqsDirty: true,
	}
	if cfg.CorePowerScale != nil && len(cfg.CorePowerScale) != n {
		panic(fmt.Sprintf("platform: CorePowerScale has %d entries for %d cores", len(cfg.CorePowerScale), n))
	}
	p.powerScale = make([]float64, n)
	for c := range p.powerScale {
		p.powerScale[c] = 1
		if cfg.CorePowerScale != nil && cfg.CorePowerScale[c] > 0 {
			p.powerScale[c] = cfg.CorePowerScale[c]
		}
	}
	for l, lv := range cfg.Levels {
		p.levelFreq[l] = lv.FrequencyGHz
		p.levelDynCoef[l] = cfg.Power.Ceff * lv.VoltageV * lv.VoltageV * lv.FrequencyGHz
	}
	for c := range p.leak {
		p.leak[c] = power.NewLeakageTracker(cfg.Power)
	}
	p.SetGovernorAll(governor.Ondemand, 0)
	p.installThreads()
	return p
}

// newStepper builds the configured thermal integrator. The fixed stepper is
// precomputed for the platform tick, the only step size Step ever uses.
func newStepper(cfg Config, net *thermal.Network) thermal.Stepper {
	switch cfg.Solver {
	case SolverEuler:
		return thermal.NewSolver(net, thermal.Euler)
	case SolverRK4:
		return thermal.NewSolver(net, thermal.RK4)
	case SolverImplicit:
		return thermal.NewImplicitSolver(net)
	default:
		s, err := thermal.NewFixedStepper(net, cfg.TickS)
		if err != nil {
			panic(fmt.Sprintf("platform: %v", err)) // TickS validated above; floorplans are never singular
		}
		return s
	}
}

// NumCores returns the core count.
func (p *Platform) NumCores() int { return p.fp.NumCores() }

// SolverKind returns the configured thermal integrator kind.
func (p *Platform) SolverKind() SolverKind { return p.cfg.Solver }

// Levels returns the DVFS level table.
func (p *Platform) Levels() []power.Level { return p.cfg.Levels }

// Now returns the simulated time in seconds.
func (p *Platform) Now() float64 { return p.now }

// Workload returns the executing workload.
func (p *Platform) Workload() workload.Workload { return p.work }

// Scheduler exposes the underlying scheduler (for affinity control).
func (p *Platform) Scheduler() *sched.Scheduler { return p.sch }

// Meter returns the accumulated energy meter.
func (p *Platform) Meter() *power.Meter { return &p.meter }

// PerfCounters returns the accumulated perf counters.
func (p *Platform) PerfCounters() Counters { return p.counters }

// AppSwitches returns how many times the running thread set was replaced
// (application switches in a Sequence workload).
func (p *Platform) AppSwitches() int { return p.appSwitches }

// CoreLevels returns the current per-core DVFS level indices. The returned
// slice aliases internal state; callers must not modify it.
func (p *Platform) CoreLevels() []int { return p.coreLevel }

// SetGovernorAll installs the same governor kind on every core (how the
// paper's actions select cpufreq governors). fixedLevel is used only by the
// userspace governor.
func (p *Platform) SetGovernorAll(kind governor.Kind, fixedLevel int) {
	g := governor.New(kind, p.cfg.Levels, fixedLevel)
	for c := range p.govs {
		p.govs[c] = g
	}
}

// SetCoreGovernor installs a governor on a single core.
func (p *Platform) SetCoreGovernor(core int, kind governor.Kind, fixedLevel int) error {
	if core < 0 || core >= len(p.govs) {
		return fmt.Errorf("platform: core %d out of range", core)
	}
	p.govs[core] = governor.New(kind, p.cfg.Levels, fixedLevel)
	return nil
}

// SetCoreLevel forces a core's DVFS level immediately and pins it with a
// userspace governor, the interface the Ge & Qiu baseline controller uses.
func (p *Platform) SetCoreLevel(core, level int) error {
	if core < 0 || core >= len(p.coreLevel) {
		return fmt.Errorf("platform: core %d out of range", core)
	}
	if level < 0 || level >= len(p.cfg.Levels) {
		return fmt.Errorf("platform: level %d out of range (%d levels)", level, len(p.cfg.Levels))
	}
	if level != p.coreLevel[core] {
		p.chargeDVFSTransition(core)
	}
	p.coreLevel[core] = level
	p.freqsDirty = true
	p.govs[core] = governor.New(governor.Userspace, p.cfg.Levels, level)
	return nil
}

// DVFSTransitions returns the cumulative count of per-core frequency-level
// changes.
func (p *Platform) DVFSTransitions() int64 { return p.dvfsTransitions }

// chargeDVFSTransition counts a level change and, if configured, stalls the
// threads currently placed on the core for the transition latency.
func (p *Platform) chargeDVFSTransition(core int) {
	p.dvfsTransitions++
	if p.cfg.DVFSTransitionS <= 0 {
		return
	}
	for i := range p.sch.Threads() {
		if p.sch.Placement(i) == core {
			p.sch.AddStall(i, p.cfg.DVFSTransitionS)
		}
	}
}

// SetAffinity sets the affinity mask of thread i of the current thread set.
func (p *Platform) SetAffinity(i int, mask sched.AffinityMask) error {
	return p.sch.SetAffinity(i, mask)
}

// CorePower returns the most recent per-core total power draw (dynamic +
// leakage, watts). The returned slice aliases internal state; callers must
// not modify it.
func (p *Platform) CorePower() []float64 { return p.dynPow }

// Temperatures returns the exact current core temperatures (degrees
// Celsius). This is oracle access for tracing and ground-truth metrics; it
// charges no overhead. The returned slice is reused between calls.
func (p *Platform) Temperatures() []float64 {
	p.fp.CoreTemperatures(p.coreTemps, p.solver.Temperatures())
	return p.coreTemps
}

// ReadSensors models a controller sampling the on-board thermal sensors:
// quantized (and optionally noisy) temperatures, with the monitoring
// overhead charged to the perf counters. dst must hold NumCores entries;
// it is filled and returned.
func (p *Platform) ReadSensors(dst []float64) []float64 {
	exact := p.Temperatures()
	for i := range dst {
		v := exact[i]
		if p.cfg.SensorNoiseC > 0 {
			v += p.rng.NormFloat64() * p.cfg.SensorNoiseC
		}
		if p.cfg.SensorQuantC > 0 {
			v = math.Round(v/p.cfg.SensorQuantC) * p.cfg.SensorQuantC
		}
		dst[i] = v
	}
	p.counters.CacheMisses += p.cfg.SampleCacheMisses
	p.counters.PageFaults += p.cfg.SamplePageFaults
	return dst
}

// installThreads pushes the workload's current thread set into the scheduler
// if it changed (application switch in a Sequence).
func (p *Platform) installThreads() {
	threads := p.work.Threads()
	if sameThreads(threads, p.lastThreads) {
		return
	}
	p.sch.SetThreads(threads)
	p.lastThreads = threads
	p.appSwitches++
}

func sameThreads(a, b []*workload.Thread) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Step advances the platform by one tick.
func (p *Platform) Step() {
	dt := p.cfg.TickS

	// Governor decisions at their own cadence.
	p.govClock += dt
	if p.govClock >= p.cfg.GovernorIntervalS {
		for c := range p.govs {
			util := p.busyAccum[c] / p.govClock
			next := p.govs[c].Decide(util, p.coreLevel[c])
			if next != p.coreLevel[c] {
				p.chargeDVFSTransition(c)
				p.coreLevel[c] = next
				p.freqsDirty = true
			}
			p.busyAccum[c] = 0
		}
		p.govClock = 0
	}

	// Scheduler tick at current frequencies. freqs only needs refilling
	// when some core's DVFS level actually changed.
	if p.freqsDirty {
		for c, l := range p.coreLevel {
			p.freqs[c] = p.levelFreq[l]
			p.coreVolt[c] = p.cfg.Levels[l].VoltageV
		}
		p.freqsDirty = false
	}
	stats := p.sch.Tick(dt, p.freqs)
	p.work.Step()
	p.installThreads()

	// Charge migration counter costs.
	if m := p.sch.Migrations(); m != p.lastMigrations {
		d := m - p.lastMigrations
		p.counters.CacheMisses += d * p.cfg.MigrationCacheMisses
		p.counters.PageFaults += d * p.cfg.MigrationPageFaults
		p.lastMigrations = m
	}

	// Power from activity and temperature; then thermal step.
	temps := p.Temperatures()
	// Bulk-evaluate the per-core leakage through the incremental trackers
	// (one call per tick instead of one per core; see power.LeakagePowers).
	power.LeakagePowers(p.leak, p.coreVolt, temps, p.leakW)
	var dynTotal, statTotal float64
	floor := p.cfg.Power.ActivityFloor
	for c := range p.dynPow {
		li := p.coreLevel[c]
		// Inline power.Model.DynamicPower using the cached per-level
		// coefficient.
		a := stats.CoreActivity[c]
		if a < floor {
			a = floor
		} else if a > 1 {
			a = 1
		}
		dyn := p.levelDynCoef[li] * a * p.powerScale[c]
		leak := p.leakW[c]
		p.dynPow[c] = dyn + leak
		dynTotal += dyn
		statTotal += leak
		p.busyAccum[c] += stats.CoreBusy[c] * dt
	}
	// powerVec's non-core entries are zero from construction and never
	// written, so only the core entries need refreshing each tick.
	for i, node := range p.fp.Cores {
		p.powerVec[node] = p.dynPow[i]
	}
	if err := p.solver.Step(dt, p.powerVec); err != nil {
		panic(err) // sizes are fixed at construction; cannot happen
	}
	p.meter.Accumulate(dynTotal, statTotal, dt)
	p.now += dt
}

// Done reports whether the workload has finished.
func (p *Platform) Done() bool { return p.work.Done() }

// Tick returns the configured tick length in seconds.
func (p *Platform) Tick() float64 { return p.cfg.TickS }
