GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The job subsystem is concurrent; the race detector is part of tier-1.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: build vet race
