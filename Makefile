GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The job subsystem is concurrent; the race detector is part of tier-1.
race:
	$(GO) test -race ./...

# Full benchmark sweep (quick-mode experiment regeneration plus the
# micro-benchmarks of every package), archived under results/ so runs are
# comparable across commits.
bench:
	@mkdir -p results
	$(GO) test -bench . -benchmem -count=1 -run '^$$' ./... | tee results/bench.txt

ci: build vet race
