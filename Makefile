GO ?= go
GOFMT ?= gofmt

.PHONY: all build fmt-check vet test race recover-test cluster-test cluster-obs-test tournament-test learning-test batch-test bench bench-smoke bench-compare bench-compare-smoke bench-dispatch-gate bench-distilled-gate bench-learning-gate bench-batch-gate ci

# Committed benchmark baseline that bench-compare diffs against.
BENCH_BASELINE ?= BENCH_pr4.json
# Where `make bench` writes its machine-readable summary.
BENCH_OUT ?= BENCH_pr10.json

all: ci

build:
	$(GO) build ./...

# gofmt -l prints offending files; a non-empty list fails the target.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The job subsystem is concurrent; the race detector is part of tier-1.
race:
	$(GO) test -race ./...

# Multi-node suite under the race detector: sharded dispatch, lease expiry
# and reassignment, heartbeat failure detection, kill-mid-job bit-identity,
# and saturation backpressure through the public API.
cluster-test:
	$(GO) test -race ./internal/cluster

# Observability-plane suite under the race detector: the in-process
# coordinator + multi-worker harness asserting cross-node span-batch merge
# (one trace, correct parent/child linkage), federated per-worker metrics on
# /metrics, the cluster status/live surfaces, drain-flush accounting, and the
# cluster flight-recorder storm triggers.
cluster-obs-test:
	$(GO) test -race -run 'TestClusterMergedTrace|TestFederatedMetrics|TestClusterStatus|TestClusterLive|TestWorkerDrainFlushesSpans|TestWorkerKillDiscardsSpans|TestClusterRecorder|TestHeartbeatClockOffset' ./internal/cluster

# Crash-recovery suite under the race detector: WAL torn-tail truncation at
# every byte offset, kill-and-restart resume, checkpoint warm starts.
recover-test:
	$(GO) test -race -run 'TestWAL|TestJournal|TestCheckpoint|TestRecovery|TestCrashRestart|TestJournaled|TestWarmStart' ./internal/durable ./internal/service

# Tournament suite under the race detector: campaign-spec golden errors,
# two-run and standalone-vs-sharded leaderboard bit-identity, the full
# POST /v1/campaigns → leaderboard HTTP flow, and journal recovery of
# finished tournaments.
tournament-test:
	$(GO) test -race -run 'TestTournament|TestParseSpec|TestPlanExpansion|TestLeaderboard|TestApplyWarmPayload' ./internal/campaign ./internal/service ./internal/cluster

# Learning-observability suite under the race detector: sampler convergence
# edge cases and the disabled-path zero-alloc guarantee, the
# sampling-is-observation-only bit-identity checks at the sim layer, the
# leaderboard tie-break, the /v1/jobs/{id}/learning HTTP flow on fig45, and
# the durable curve archive.
learning-test:
	$(GO) test -race -run 'TestLearning|TestCurve|TestLeaderboardTieBreak' ./internal/rl ./internal/sim ./internal/campaign ./internal/service ./internal/durable

# Lockstep-batching suite under the race detector: batch-kernel bit-identity
# against the scalar stepper (including the large-grid streaming kernel and
# the zero-alloc Advance guarantee), sim.RunBatch lane isolation and mixed
# configs, PlanBatches grouping, the pool's batched-vs-unbatched leaderboard
# bit-identity, and worker-aware task planning.
batch-test:
	$(GO) test -race -run 'TestBatch|TestRunBatch|TestPlanBatches|TestPoolBatched|TestPlanTasks' ./internal/thermal ./internal/sim ./internal/campaign ./internal/service

# Full benchmark sweep (quick-mode experiment regeneration plus the
# micro-benchmarks of every package). The human-readable benchstat text is
# archived under results/ so runs are comparable across commits, and the same
# run is distilled into $(BENCH_OUT) (name -> ns/op, B/op, allocs/op, custom
# b.ReportMetric units, plus each benchmark's ns/op delta against
# $(BENCH_BASELINE)) at the repo root for machine consumption. Override both
# variables to produce a new PR's summary against the previous one.
# -report-only: the sweep records overhead, it is not a gate —
# bench-dispatch-gate is.
bench:
	@mkdir -p results
	$(GO) test -bench . -benchmem -count=1 -run '^$$' ./... | tee results/bench.txt
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -report-only -o $(BENCH_OUT) results/bench.txt

# Benchmark smoke: every benchmark compiles and survives one iteration.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > /dev/null

# Regression gate: rerun the figure-campaign benchmarks on HEAD and diff them
# against the committed baseline; >20% ns/op or allocs/op regression fails.
bench-compare:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkFig' -benchmem -count=1 -run '^$$' . | tee results/bench-compare.txt
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) results/bench-compare.txt

# Smoke form of the gate for ci: only the two headline campaigns, two
# iterations each. HEAD sits far below the committed baseline, so even the
# extra timing noise of a short run stays inside the threshold; allocs/op is
# deterministic either way.
bench-compare-smoke:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkFig[13]$$' -benchmem -benchtime 2x -run '^$$' . | tee results/bench-compare-smoke.txt
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) results/bench-compare-smoke.txt

# Span-propagation overhead gate: PR 7 threads trace context through every
# dispatch round trip, so BenchmarkClusterDispatch must stay within 5% ns/op
# of the pre-tracing PR 6 baseline (the recorded delta lands in BENCH_pr7.json
# via `make bench`). -gate-ns: the span batch on the completion payload
# legitimately allocates — allocs/op is reported, latency gates. Not part of
# ci: a 5% wall-clock gate against a baseline recorded in a different run is
# only meaningful on a quiet machine.
bench-dispatch-gate:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkClusterDispatch$$' -benchmem -count=1 -run '^$$' ./internal/cluster | tee results/bench-dispatch.txt
	$(GO) run ./cmd/benchjson -only 'BenchmarkClusterDispatch' -threshold 0.05 -gate-ns -compare BENCH_pr6.json results/bench-dispatch.txt

# Distillation payoff gate: the distilled policy's decision epoch must stay
# within 50% ns/op of the committed PR 8 baseline (~3ns — a table lookup;
# the Q-table learners sit ~50x above it). Like bench-dispatch-gate, a
# wall-clock gate belongs on a quiet machine, not in ci.
bench-distilled-gate:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkDecisionEpoch$$' -benchmem -count=1 -run '^$$' ./internal/policy | tee results/bench-distilled.txt
	$(GO) run ./cmd/benchjson -only 'BenchmarkDecisionEpoch/distilled' -threshold 0.50 -gate-ns -compare BENCH_pr8.json results/bench-distilled.txt

# Disabled-sampler overhead gate: learning-curve sampling rides the nil
# receiver when no observer is armed, so BenchmarkFig1 (which never arms one)
# must stay within 2% ns/op of the pre-sampling PR 8 baseline. Like
# bench-dispatch-gate, a tight wall-clock gate against a baseline recorded in
# a different run belongs on a quiet machine, not in ci.
bench-learning-gate:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkFig1$$' -benchmem -count=1 -run '^$$' . | tee results/bench-learning.txt
	$(GO) run ./cmd/benchjson -only 'BenchmarkFig1' -threshold 0.02 -gate-ns -compare BENCH_pr8.json results/bench-learning.txt

# Batched-campaign throughput floor: the batched 64-cell sweep's ns/op (the
# inverse of its sims/s — the per-op simulation count is fixed) must stay
# within 50% of the committed PR 10 baseline, catching kernel regressions like
# a de-optimized inner loop while leaving headroom for shared-hardware noise.
# Like bench-dispatch-gate, a wall-clock gate against a baseline recorded in a
# different run belongs on a quiet machine, not in ci.
bench-batch-gate:
	@mkdir -p results
	$(GO) test -bench 'BenchmarkBatchCampaign/batched' -benchmem -count=1 -run '^$$' . | tee results/bench-batch.txt
	$(GO) run ./cmd/benchjson -only 'BenchmarkBatchCampaign/batched' -threshold 0.50 -gate-ns -compare BENCH_pr10.json results/bench-batch.txt

ci: build fmt-check vet race cluster-test cluster-obs-test tournament-test learning-test batch-test bench-smoke bench-compare-smoke
